(* Tests for the density-matrix simulator: pure-state agreement with the
   statevector backend, channel properties, and cross-validation of the
   Monte-Carlo trajectory sampler against the exact channel. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Calibration = Qaoa_hardware.Calibration
module Statevector = Qaoa_sim.Statevector
module Density_matrix = Qaoa_sim.Density_matrix
module Noise = Qaoa_sim.Noise
module Rng = Qaoa_util.Rng

let random_circuit rng n len =
  Circuit.of_gates n
    (List.init len (fun _ ->
         match Rng.int rng 7 with
         | 0 -> Gate.H (Rng.int rng n)
         | 1 -> Gate.Rx (Rng.int rng n, Rng.float rng 6.0)
         | 2 -> Gate.Ry (Rng.int rng n, Rng.float rng 6.0)
         | 3 -> Gate.Rz (Rng.int rng n, Rng.float rng 6.0)
         | 4 when n > 1 ->
           let a = Rng.int rng n in
           Gate.Cnot (a, (a + 1) mod n)
         | 5 when n > 1 ->
           let a = Rng.int rng n in
           Gate.Cphase (a, (a + 1) mod n, Rng.float rng 6.0)
         | 6 when n > 1 ->
           let a = Rng.int rng n in
           Gate.Swap (a, (a + 1) mod n)
         | _ -> Gate.X (Rng.int rng n)))

let test_initial_state () =
  let t = Density_matrix.create 2 in
  Alcotest.(check (float 1e-12)) "p(00)" 1.0 (Density_matrix.probability t 0);
  Alcotest.(check (float 1e-12)) "trace" 1.0 (Density_matrix.trace t);
  Alcotest.(check (float 1e-12)) "pure" 1.0 (Density_matrix.purity t)

let test_of_statevector () =
  let sv = Statevector.of_circuit (Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ]) in
  let t = Density_matrix.of_statevector sv in
  Alcotest.(check (float 1e-12)) "p(00)" 0.5 (Density_matrix.probability t 0);
  Alcotest.(check (float 1e-12)) "p(11)" 0.5 (Density_matrix.probability t 3);
  Alcotest.(check (float 1e-12)) "pure" 1.0 (Density_matrix.purity t)

(* Pure-state evolution must match the statevector simulator exactly. *)
let prop_matches_statevector =
  QCheck.Test.make
    ~name:"density matrix matches statevector on pure circuits" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 1 4))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_circuit rng n 20 in
      let sv = Statevector.of_circuit c in
      let dm = Density_matrix.create n in
      Density_matrix.apply_circuit dm c;
      let ok = ref true in
      for i = 0 to (1 lsl n) - 1 do
        if
          Float.abs (Statevector.probability sv i -. Density_matrix.probability dm i)
          > 1e-9
        then ok := false
      done;
      !ok && Float.abs (Density_matrix.trace dm -. 1.0) < 1e-9)

let test_depolarize_1q_mixes () =
  let t = Density_matrix.create 1 in
  (* full depolarization of |0>: 1/3 (X + Y + Z) conjugations *)
  Density_matrix.depolarize_1q t 1.0 0;
  (* X|0> and Y|0> give |1>, Z|0> gives |0>: p(0) = 1/3, p(1) = 2/3 *)
  Alcotest.(check (float 1e-12)) "p(0)" (1.0 /. 3.0) (Density_matrix.probability t 0);
  Alcotest.(check (float 1e-12)) "p(1)" (2.0 /. 3.0) (Density_matrix.probability t 1);
  Alcotest.(check (float 1e-12)) "trace preserved" 1.0 (Density_matrix.trace t);
  Alcotest.(check bool) "purity dropped" true (Density_matrix.purity t < 1.0)

let test_depolarize_2q_uniformizes () =
  (* Heavy 2q depolarization drives the state towards maximal mixing. *)
  let t = Density_matrix.create 2 in
  Density_matrix.apply_gate t (Gate.H 0);
  Density_matrix.apply_gate t (Gate.Cnot (0, 1));
  for _ = 1 to 10 do
    Density_matrix.depolarize_2q t 0.9 0 1
  done;
  Alcotest.(check (float 1e-9)) "trace" 1.0 (Density_matrix.trace t);
  Alcotest.(check (float 0.02)) "near maximally mixed purity" 0.25
    (Density_matrix.purity t);
  for i = 0 to 3 do
    Alcotest.(check (float 0.02))
      (Printf.sprintf "p(%d) uniform" i)
      0.25 (Density_matrix.probability t i)
  done

let test_noisy_circuit_trace_preserved () =
  let cal = Calibration.create ~single_qubit_error:0.02 [ (0, 1, 0.05); (1, 2, 0.08) ] in
  let c =
    Circuit.of_gates 3
      [ Gate.H 0; Gate.Cphase (0, 1, 0.7); Gate.Cnot (1, 2); Gate.Rx (2, 0.3) ]
  in
  let t = Density_matrix.apply_noisy_circuit cal c in
  Alcotest.(check (float 1e-9)) "trace" 1.0 (Density_matrix.trace t);
  Alcotest.(check bool) "mixed" true (Density_matrix.purity t < 1.0)

(* The central cross-validation: trajectory-averaged probabilities must
   converge to the exact channel's density matrix. *)
let test_trajectories_converge_to_channel () =
  let rng = Rng.create 123 in
  let cal =
    Calibration.create ~single_qubit_error:0.01 ~readout_error:0.0
      [ (0, 1, 0.08); (1, 2, 0.12) ]
  in
  let c =
    Circuit.of_gates 3
      [
        Gate.H 0; Gate.H 1; Gate.H 2; Gate.Cphase (0, 1, 0.9);
        Gate.Cphase (1, 2, 0.9); Gate.Rx (0, 0.8); Gate.Rx (1, 0.8);
        Gate.Rx (2, 0.8);
      ]
  in
  let exact = Density_matrix.apply_noisy_circuit cal c in
  let noise = Noise.create ~apply_readout:false cal in
  let trials = 3000 in
  let acc = Array.make 8 0.0 in
  for _ = 1 to trials do
    let sv = Noise.run_trajectory rng noise c in
    for i = 0 to 7 do
      acc.(i) <- acc.(i) +. Statevector.probability sv i
    done
  done;
  for i = 0 to 7 do
    let avg = acc.(i) /. float_of_int trials in
    let expected = Density_matrix.probability exact i in
    if Float.abs (avg -. expected) > 0.02 then
      Alcotest.failf "trajectory mean %.4f vs channel %.4f at %d" avg expected i
  done

let test_expectation_diag_agreement () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cphase (0, 1, 1.1); Gate.Rx (1, 0.7) ] in
  let sv = Statevector.of_circuit c in
  let dm = Density_matrix.create 2 in
  Density_matrix.apply_circuit dm c;
  let f i = float_of_int ((i land 1) + ((i lsr 1) land 1)) in
  Alcotest.(check (float 1e-9)) "same expectation"
    (Statevector.expectation_diag sv f)
    (Density_matrix.expectation_diag dm f)

let test_size_guard () =
  Alcotest.check_raises "too large"
    (Invalid_argument "Density_matrix.create: 0 <= n <= 13") (fun () ->
      ignore (Density_matrix.create 14))

let test_bad_rate () =
  let t = Density_matrix.create 1 in
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Density_matrix: bad error rate") (fun () ->
      Density_matrix.depolarize_1q t 1.5 0)

let suite =
  [
    ("initial state", `Quick, test_initial_state);
    ("of statevector", `Quick, test_of_statevector);
    ("depolarize 1q", `Quick, test_depolarize_1q_mixes);
    ("depolarize 2q uniformizes", `Quick, test_depolarize_2q_uniformizes);
    ("noisy circuit trace preserved", `Quick, test_noisy_circuit_trace_preserved);
    ("trajectories converge to channel", `Slow, test_trajectories_converge_to_channel);
    ("expectation agreement", `Quick, test_expectation_diag_agreement);
    ("size guard", `Quick, test_size_guard);
    ("bad rate", `Quick, test_bad_rate);
    QCheck_alcotest.to_alcotest prop_matches_statevector;
  ]
