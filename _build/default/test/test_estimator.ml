(* Tests for the shot-statistics estimator and the direction-constrained
   CNOT lowering. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Decompose = Qaoa_circuit.Decompose
module Statevector = Qaoa_sim.Statevector
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Estimator = Qaoa_core.Estimator
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng

(* --- estimator --- *)

let test_estimate_deterministic_samples () =
  let problem = Problem.of_maxcut (Generators.cycle 4) in
  (* all samples are the same optimal cut: zero spread *)
  let e = Estimator.of_samples problem [| 0b0101; 0b0101; 0b0101 |] in
  Alcotest.(check (float 1e-9)) "mean" 4.0 e.Estimator.mean;
  Alcotest.(check (float 1e-9)) "no error" 0.0 e.Estimator.std_error;
  let lo, hi = e.Estimator.confidence_95 in
  Alcotest.(check (float 1e-9)) "tight lo" 4.0 lo;
  Alcotest.(check (float 1e-9)) "tight hi" 4.0 hi

let test_estimate_converges () =
  let problem = Problem.of_maxcut (Generators.cycle 6) in
  let params = Ansatz.params_p1 ~gamma:0.6 ~beta:0.4 in
  let sv = Ansatz.state problem params in
  let exact = Ansatz.expectation problem params in
  let small = Estimator.of_state (Rng.create 1) problem sv ~shots:128 in
  let large = Estimator.of_state (Rng.create 1) problem sv ~shots:16384 in
  Alcotest.(check bool) "std error shrinks" true
    (large.Estimator.std_error < small.Estimator.std_error /. 5.0);
  Alcotest.(check bool) "within 4 sigma of exact" true
    (Float.abs (large.Estimator.mean -. exact)
    < 4.0 *. large.Estimator.std_error +. 1e-9)

let test_shots_for_precision () =
  let problem = Problem.of_maxcut (Generators.cycle 6) in
  let sv = Ansatz.state problem (Ansatz.params_p1 ~gamma:0.6 ~beta:0.4) in
  let coarse = Estimator.shots_for_precision problem sv ~std_error:0.1 in
  let fine = Estimator.shots_for_precision problem sv ~std_error:0.01 in
  Alcotest.(check bool) "positive" true (coarse > 0);
  (* ceil rounding: fine is within one coarse-step of exactly 100x *)
  Alcotest.(check bool) "~100x shots for 10x precision" true
    (fine <= coarse * 100 && fine > (coarse - 1) * 100);
  (* empirical check: using the prescribed shots meets the target *)
  let e = Estimator.of_state (Rng.create 2) problem sv ~shots:coarse in
  Alcotest.(check bool) "precision reached (within 50% slack)" true
    (e.Estimator.std_error < 0.15);
  Alcotest.check_raises "bad target"
    (Invalid_argument "Estimator.shots_for_precision: std_error must be positive")
    (fun () -> ignore (Estimator.shots_for_precision problem sv ~std_error:0.0))

let test_estimator_empty () =
  let problem = Problem.of_maxcut (Generators.cycle 4) in
  Alcotest.check_raises "empty" (Invalid_argument "Estimator.of_samples: no samples")
    (fun () -> ignore (Estimator.of_samples problem [||]))

(* --- directed orientation --- *)

let test_orient_passthrough () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  let o = Decompose.orient ~allowed:[ (0, 1) ] c in
  Alcotest.(check int) "unchanged" 2 (Circuit.length o)

let test_orient_flips () =
  let c = Circuit.of_gates 2 [ Gate.Cnot (0, 1) ] in
  let o = Decompose.orient ~allowed:[ (1, 0) ] c in
  (* 4 H + flipped CNOT *)
  Alcotest.(check int) "5 gates" 5 (Circuit.length o);
  (match Circuit.gates o with
  | [ Gate.H _; Gate.H _; Gate.Cnot (1, 0); Gate.H _; Gate.H _ ] -> ()
  | _ -> Alcotest.fail "expected H-conjugated reversed CNOT");
  Alcotest.(check bool) "same unitary" true
    (Statevector.equal_up_to_global_phase
       (Statevector.of_circuit c)
       (Statevector.of_circuit o))

let test_orient_lowers_first () =
  (* CPHASE gets decomposed and then oriented *)
  let c = Circuit.of_gates 2 [ Gate.Cphase (0, 1, 0.7) ] in
  let o = Decompose.orient ~allowed:[ (1, 0) ] c in
  Alcotest.(check bool) "all cnots oriented" true
    (List.for_all
       (function Gate.Cnot (1, 0) | Gate.Cnot (0, 1) -> false | _ -> true)
       (List.filter
          (function Gate.Cnot (0, 1) -> true | _ -> false)
          (Circuit.gates o)));
  Alcotest.(check bool) "semantics" true
    (Statevector.equal_up_to_global_phase
       (Statevector.of_circuit c)
       (Statevector.of_circuit o))

let test_orient_missing_pair () =
  let c = Circuit.of_gates 3 [ Gate.Cnot (0, 2) ] in
  Alcotest.check_raises "unrouted pair"
    (Invalid_argument "Decompose.orient: pair (0,2) has no native direction")
    (fun () -> ignore (Decompose.orient ~allowed:[ (0, 1); (1, 2) ] c))

let prop_orient_preserves_semantics =
  QCheck.Test.make ~name:"orientation lowering preserves semantics" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      (* line circuit with CNOTs in both directions; allowed = ascending *)
      let gates =
        List.init 15 (fun _ ->
            match Rng.int rng 3 with
            | 0 -> Gate.H (Rng.int rng n)
            | 1 ->
              let a = Rng.int rng (n - 1) in
              Gate.Cnot (a, a + 1)
            | _ ->
              let a = Rng.int rng (n - 1) in
              Gate.Cnot (a + 1, a))
      in
      let c = Circuit.of_gates n gates in
      let allowed = List.init (n - 1) (fun i -> (i, i + 1)) in
      let o = Decompose.orient ~allowed c in
      (* every CNOT flows in the native direction *)
      List.for_all
        (function
          | Gate.Cnot (a, b) -> List.mem (a, b) allowed
          | _ -> true)
        (Circuit.gates o)
      && Statevector.equal_up_to_global_phase ~eps:1e-9
           (Statevector.of_circuit c) (Statevector.of_circuit o))

let suite =
  [
    ("estimate deterministic", `Quick, test_estimate_deterministic_samples);
    ("estimate converges", `Slow, test_estimate_converges);
    ("shots for precision", `Quick, test_shots_for_precision);
    ("estimator empty", `Quick, test_estimator_empty);
    ("orient passthrough", `Quick, test_orient_passthrough);
    ("orient flips", `Quick, test_orient_flips);
    ("orient lowers first", `Quick, test_orient_lowers_first);
    ("orient missing pair", `Quick, test_orient_missing_pair);
    QCheck_alcotest.to_alcotest prop_orient_preserves_semantics;
  ]
