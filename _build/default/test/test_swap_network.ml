(* Tests for the SWAP-network scheduler and readout mitigation. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Layering = Qaoa_circuit.Layering
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Mapping = Qaoa_backend.Mapping
module Compliance = Qaoa_backend.Compliance
module Router = Qaoa_backend.Router
module Statevector = Qaoa_sim.Statevector
module Sampler = Qaoa_sim.Sampler
module Mitigation = Qaoa_sim.Mitigation
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Swap_network = Qaoa_core.Swap_network
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng

let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4

(* --- Swap network --- *)

let test_serpentine_line () =
  let line = Swap_network.serpentine_line ~rows:3 ~cols:3 in
  Alcotest.(check (list int)) "boustrophedon"
    [ 0; 1; 2; 5; 4; 3; 6; 7; 8 ] line;
  (* consecutive vertices coupled on the grid *)
  let device = Topologies.grid ~rows:3 ~cols:3 in
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "coupled" true (Device.coupled device a b);
      check rest
    | _ -> ()
  in
  check line

let test_network_meets_every_pair () =
  (* Every problem CPHASE must appear exactly once even for K_n. *)
  let device = Topologies.linear 6 in
  let problem = Problem.of_maxcut (Generators.complete 6) in
  let line = [ 0; 1; 2; 3; 4; 5 ] in
  let r = Swap_network.compile ~line device problem params in
  let cphases =
    List.filter (function Gate.Cphase _ -> true | _ -> false)
      (Circuit.gates r.Router.circuit)
  in
  Alcotest.(check int) "C(6,2) cphases" 15 (List.length cphases);
  Alcotest.(check int) "n(n-1)/2 swaps" 15 r.Router.swap_count;
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Router.circuit)

let test_network_semantics () =
  let device = Topologies.linear 5 in
  let rng = Rng.create 3 in
  for _ = 1 to 5 do
    let g = Generators.erdos_renyi rng ~n:5 ~p:0.6 in
    if Qaoa_graph.Graph.num_edges g > 0 then begin
      let problem = Problem.of_maxcut g in
      let r =
        Swap_network.compile ~line:[ 0; 1; 2; 3; 4 ] device problem params
      in
      let logical = Ansatz.state problem params in
      let phys = Statevector.of_circuit r.Router.circuit in
      for b = 0 to 31 do
        let idx = ref 0 in
        for l = 0 to 4 do
          if b land (1 lsl l) <> 0 then
            idx := !idx lor (1 lsl (Mapping.phys r.Router.final_mapping l))
        done;
        let pl = Statevector.probability logical b in
        let pp = Statevector.probability phys !idx in
        if Float.abs (pl -. pp) > 1e-9 then
          Alcotest.failf "probability mismatch at %d" b
      done
    end
  done

let test_network_on_grid () =
  let device = Topologies.grid_6x6 () in
  let line = Swap_network.serpentine_line ~rows:6 ~cols:6 in
  let rng = Rng.create 5 in
  let problem =
    Problem.of_maxcut (Generators.erdos_renyi rng ~n:20 ~p:0.8)
  in
  let r = Swap_network.compile ~line device problem params in
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Router.circuit);
  (* linear-depth guarantee: depth O(n), far below a routed dense graph's
     worst case; sanity bound 6 * n *)
  Alcotest.(check bool) "depth linear-ish" true
    (Layering.depth r.Router.circuit < 6 * 20)

let test_network_dense_beats_ic_in_depth () =
  (* On dense instances the swap network's structured schedule should
     match or beat routed IC depth. *)
  let device = Topologies.grid_6x6 () in
  let line = Swap_network.serpentine_line ~rows:6 ~cols:6 in
  let rng = Rng.create 7 in
  let wins = ref 0 in
  for seed = 0 to 4 do
    let problem =
      Problem.of_maxcut (Generators.erdos_renyi rng ~n:24 ~p:0.9)
    in
    let sn = Swap_network.compile ~line device problem params in
    let options = { Compile.default_options with seed } in
    let ic = Compile.compile ~options ~strategy:(Compile.Ic None) device problem params in
    let sn_depth =
      (Qaoa_circuit.Metrics.of_circuit sn.Router.circuit).Qaoa_circuit.Metrics.depth
    in
    if sn_depth <= ic.Compile.metrics.Qaoa_circuit.Metrics.depth then incr wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "network wins %d/5 dense instances" !wins)
    true (!wins >= 3)

let test_network_validation () =
  let device = Topologies.linear 4 in
  let problem = Problem.of_maxcut (Generators.complete 4) in
  Alcotest.check_raises "short line"
    (Invalid_argument "Swap_network.compile: line shorter than problem")
    (fun () ->
      ignore (Swap_network.compile ~line:[ 0; 1 ] device problem params));
  Alcotest.check_raises "broken line"
    (Invalid_argument "Swap_network.compile: line is not a coupled path")
    (fun () ->
      ignore (Swap_network.compile ~line:[ 0; 2; 1; 3 ] device problem params));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Swap_network.compile: line revisits a qubit")
    (fun () ->
      ignore
        (Swap_network.compile ~line:[ 0; 1; 0; 1 ] device problem params))

let test_network_multilevel () =
  let device = Topologies.linear 4 in
  let problem = Problem.of_maxcut (Generators.complete 4) in
  let p2 = { Ansatz.gammas = [| 0.7; 0.2 |]; betas = [| 0.4; 0.9 |] } in
  let r = Swap_network.compile ~line:[ 0; 1; 2; 3 ] device problem p2 in
  (* two full networks: qubits return to their start positions *)
  Alcotest.(check bool) "mapping restored" true
    (Mapping.equal r.Router.final_mapping
       (Mapping.of_array ~num_physical:4 [| 0; 1; 2; 3 |]));
  let logical = Ansatz.state problem p2 in
  let phys = Statevector.of_circuit r.Router.circuit in
  for b = 0 to 15 do
    if
      Float.abs
        (Statevector.probability logical b -. Statevector.probability phys b)
      > 1e-9
    then Alcotest.failf "p=2 mismatch at %d" b
  done

(* --- Mitigation --- *)

let test_inverse_confusion_identity () =
  let dist = [| 0.25; 0.25; 0.25; 0.25 |] in
  let out = Mitigation.apply_inverse_confusion ~p:0.0 ~num_qubits:2 dist in
  Alcotest.(check (array (float 1e-12))) "p=0 identity" dist out

let test_inverse_confusion_roundtrip () =
  (* apply the forward channel then unfold: must recover the input *)
  let p = 0.08 in
  let forward dist =
    let n = 2 in
    let size = 1 lsl n in
    let out = Array.make size 0.0 in
    for i = 0 to size - 1 do
      for j = 0 to size - 1 do
        (* probability of reading j given true i *)
        let prob = ref 1.0 in
        for q = 0 to n - 1 do
          let same = (i lsr q) land 1 = (j lsr q) land 1 in
          prob := !prob *. if same then 1.0 -. p else p
        done;
        out.(j) <- out.(j) +. (dist.(i) *. !prob)
      done
    done;
    out
  in
  let dist = [| 0.5; 0.1; 0.15; 0.25 |] in
  let recovered =
    Mitigation.apply_inverse_confusion ~p ~num_qubits:2 (forward dist)
  in
  Array.iteri
    (fun i x ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "entry %d" i) dist.(i) x)
    recovered

let test_mitigation_validation () =
  Alcotest.check_raises "p too large"
    (Invalid_argument "Mitigation: flip probability must be in [0, 0.5)")
    (fun () ->
      ignore
        (Mitigation.apply_inverse_confusion ~p:0.5 ~num_qubits:1 [| 1.0; 0.0 |]));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Mitigation: distribution length mismatch") (fun () ->
      ignore (Mitigation.apply_inverse_confusion ~p:0.1 ~num_qubits:2 [| 1.0 |]))

let test_clip_and_renormalize () =
  let out = Mitigation.clip_and_renormalize [| 0.6; -0.1; 0.5 |] in
  Alcotest.(check (float 1e-12)) "sums to one" 1.0
    (Array.fold_left ( +. ) 0.0 out);
  Alcotest.(check (float 1e-12)) "negative clipped" 0.0 out.(1)

let test_mitigation_recovers_bell () =
  (* Bell state sampled through readout noise: mitigated expectation of
     the parity observable must be closer to the ideal 1.0 than raw. *)
  let rng = Rng.create 11 in
  let p = 0.1 in
  let sv =
    Statevector.of_circuit
      (Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1) ])
  in
  let shots = 20000 in
  let noisy_counts = Hashtbl.create 4 in
  Array.iter
    (fun s ->
      let s = Sampler.flip_bits rng ~p ~num_qubits:2 s in
      Hashtbl.replace noisy_counts s
        (1 + Option.value ~default:0 (Hashtbl.find_opt noisy_counts s)))
    (Sampler.sample_many rng sv ~shots);
  let counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) noisy_counts [] in
  let parity b = if (b land 1) lxor ((b lsr 1) land 1) = 0 then 1.0 else -1.0 in
  let raw =
    List.fold_left
      (fun acc (b, c) -> acc +. (parity b *. float_of_int c))
      0.0 counts
    /. float_of_int shots
  in
  let mitigated = Mitigation.expectation ~p ~num_qubits:2 parity counts in
  Alcotest.(check bool)
    (Printf.sprintf "mitigated %.3f closer to 1 than raw %.3f" mitigated raw)
    true
    (Float.abs (mitigated -. 1.0) < Float.abs (raw -. 1.0));
  Alcotest.(check bool) "mitigated near ideal" true
    (Float.abs (mitigated -. 1.0) < 0.05)

let prop_mitigation_distribution_valid =
  QCheck.Test.make ~name:"mitigated counts form a distribution" ~count:50
    QCheck.(pair (int_bound 10000) (int_range 1 4))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let size = 1 lsl n in
      let counts =
        List.init (Rng.int rng 6 + 1) (fun _ ->
            (Rng.int rng size, 1 + Rng.int rng 100))
      in
      let dist = Mitigation.mitigate_counts ~p:0.05 ~num_qubits:n counts in
      Array.for_all (fun x -> x >= 0.0) dist
      && Float.abs (Array.fold_left ( +. ) 0.0 dist -. 1.0) < 1e-9)

let suite =
  [
    ("serpentine line", `Quick, test_serpentine_line);
    ("network meets every pair", `Quick, test_network_meets_every_pair);
    ("network semantics", `Quick, test_network_semantics);
    ("network on grid", `Quick, test_network_on_grid);
    ("network dense vs IC depth", `Slow, test_network_dense_beats_ic_in_depth);
    ("network validation", `Quick, test_network_validation);
    ("network multilevel", `Quick, test_network_multilevel);
    ("mitigation: p=0 identity", `Quick, test_inverse_confusion_identity);
    ("mitigation: forward/backward roundtrip", `Quick, test_inverse_confusion_roundtrip);
    ("mitigation: validation", `Quick, test_mitigation_validation);
    ("mitigation: clip and renormalize", `Quick, test_clip_and_renormalize);
    ("mitigation: recovers bell parity", `Slow, test_mitigation_recovers_bell);
    QCheck_alcotest.to_alcotest prop_mitigation_distribution_valid;
  ]
