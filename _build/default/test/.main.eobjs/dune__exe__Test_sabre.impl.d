test/test_sabre.ml: Alcotest Float List Printf QCheck QCheck_alcotest Qaoa_backend Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_sim Qaoa_util
