test/test_solver.ml: Alcotest Printf Qaoa_backend Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_sim Qaoa_util
