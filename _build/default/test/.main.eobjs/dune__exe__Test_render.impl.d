test/test_render.ml: Alcotest Array List Printf Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_sim Qaoa_util String
