test/test_swap_network.ml: Alcotest Array Float Hashtbl List Option Printf QCheck QCheck_alcotest Qaoa_backend Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_sim Qaoa_util
