test/test_core.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_sim Qaoa_util
