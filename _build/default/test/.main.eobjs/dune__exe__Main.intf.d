test/main.mli:
