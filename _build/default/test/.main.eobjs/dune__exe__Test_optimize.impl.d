test/test_optimize.ml: Alcotest Float Hashtbl List QCheck QCheck_alcotest Qaoa_circuit Qaoa_sim Qaoa_util
