test/test_families.ml: Alcotest Float List Printf Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_util
