test/test_pipeline.ml: Alcotest Lazy List QCheck QCheck_alcotest Qaoa_backend Qaoa_circuit Qaoa_core Qaoa_experiments Qaoa_hardware Qaoa_util String
