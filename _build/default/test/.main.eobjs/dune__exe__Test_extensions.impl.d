test/test_extensions.ml: Alcotest Array Float List Printf Qaoa_backend Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_sim Qaoa_util
