test/test_graph.ml: Alcotest Array Float List QCheck QCheck_alcotest Qaoa_graph Qaoa_util
