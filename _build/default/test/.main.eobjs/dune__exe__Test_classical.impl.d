test/test_classical.ml: Alcotest Filename Float List Printf Qaoa_core Qaoa_experiments Qaoa_graph Qaoa_util String Sys
