test/test_encodings.ml: Alcotest Float List Printf QCheck QCheck_alcotest Qaoa_backend Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_util
