test/test_experiments.ml: Alcotest Float List Option Qaoa_core Qaoa_experiments Qaoa_graph Qaoa_hardware Qaoa_util
