test/test_density.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Qaoa_circuit Qaoa_hardware Qaoa_sim Qaoa_util
