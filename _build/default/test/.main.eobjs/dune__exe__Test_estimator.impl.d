test/test_estimator.ml: Alcotest Float List QCheck QCheck_alcotest Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_sim Qaoa_util
