test/test_hardware.ml: Alcotest Array List Printf Qaoa_graph Qaoa_hardware Qaoa_util
