test/test_backend.ml: Alcotest Array Float List QCheck QCheck_alcotest Qaoa_backend Qaoa_circuit Qaoa_hardware Qaoa_sim Qaoa_util
