test/test_edge_cases.ml: Alcotest Array List Qaoa_backend Qaoa_circuit Qaoa_core Qaoa_graph Qaoa_hardware Qaoa_sim Qaoa_util
