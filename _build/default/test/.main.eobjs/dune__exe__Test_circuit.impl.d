test/test_circuit.ml: Alcotest Float List QCheck QCheck_alcotest Qaoa_circuit Qaoa_sim Qaoa_util String
