(* Tests for classical MaxCut/Ising baselines and the CSV exporter. *)

module Problem = Qaoa_core.Problem
module Classical = Qaoa_core.Classical
module Export = Qaoa_experiments.Export
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng

let test_flip_delta_matches_recomputation () =
  let rng = Rng.create 1 in
  for _ = 1 to 20 do
    let g = Generators.erdos_renyi rng ~n:8 ~p:0.5 in
    let problem =
      Problem.create ~num_vars:8
        ~linear:[ (0, 0.7); (3, -0.4) ]
        (List.map (fun (u, v) -> (u, v, Rng.float rng 2.0 -. 1.0)) (Qaoa_graph.Graph.edges g))
    in
    let bits = Rng.int rng 256 in
    for i = 0 to 7 do
      let delta = Classical.flip_delta problem bits i in
      let direct =
        Problem.cost problem (bits lxor (1 lsl i)) -. Problem.cost problem bits
      in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "delta bit %d" i) direct delta
    done
  done

let test_local_search_reaches_local_optimum () =
  let rng = Rng.create 2 in
  let g = Generators.random_regular rng ~n:12 ~d:3 in
  let problem = Problem.of_maxcut g in
  let bits, cost = Classical.local_search rng ~restarts:3 problem in
  Alcotest.(check (float 1e-9)) "cost consistent" cost (Problem.cost problem bits);
  (* no single flip improves *)
  for i = 0 to 11 do
    Alcotest.(check bool) "locally optimal" true
      (Classical.flip_delta problem bits i <= 1e-9)
  done

let test_baselines_on_known_optimum () =
  (* C6's MaxCut is 6 and easy for every baseline *)
  let problem = Problem.of_maxcut (Generators.cycle 6) in
  let rng = Rng.create 3 in
  let _, ls = Classical.local_search rng problem in
  let _, sa = Classical.simulated_annealing rng problem in
  Alcotest.(check (float 1e-9)) "local search optimal" 6.0 ls;
  Alcotest.(check (float 1e-9)) "annealing optimal" 6.0 sa

let test_sa_beats_random () =
  let rng = Rng.create 4 in
  let total_sa = ref 0.0 and total_rand = ref 0.0 in
  for seed = 0 to 4 do
    let g = Generators.erdos_renyi (Rng.create seed) ~n:14 ~p:0.4 in
    if Qaoa_graph.Graph.num_edges g > 0 then begin
      let problem = Problem.of_maxcut g in
      let _, sa = Classical.simulated_annealing rng problem in
      let _, rand = Classical.random_sampling rng ~samples:64 problem in
      total_sa := !total_sa +. sa;
      total_rand := !total_rand +. rand
    end
  done;
  Alcotest.(check bool) "annealing >= weak random baseline" true
    (!total_sa >= !total_rand)

let test_baselines_match_bruteforce_small () =
  let rng = Rng.create 5 in
  for seed = 0 to 4 do
    let g = Generators.erdos_renyi (Rng.create (100 + seed)) ~n:10 ~p:0.5 in
    let problem = Problem.of_maxcut g in
    let _, optimum = Problem.brute_force_best problem in
    let _, sa =
      Classical.simulated_annealing rng ~steps:20000 problem
    in
    Alcotest.(check bool)
      (Printf.sprintf "SA %.0f near optimum %.0f" sa optimum)
      true
      (sa >= optimum -. 1.0)
  done

let test_edge_cases () =
  let empty = Problem.create ~num_vars:0 [] in
  let rng = Rng.create 6 in
  let _, c = Classical.simulated_annealing rng empty in
  Alcotest.(check (float 1e-12)) "empty problem" 0.0 c;
  let constant = Problem.create ~num_vars:2 ~constant:5.0 [] in
  let _, c2 = Classical.local_search rng constant in
  Alcotest.(check (float 1e-12)) "constant objective" 5.0 c2

(* --- Export --- *)

let test_csv_format () =
  let csv =
    Export.csv_of_rows ~columns:[ "a"; "b" ]
      [ ("row1", [ 1.5; 2.0 ]); ("ro,w2", [ 3.25 ]) ]
  in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "header" "workload,a,b" (List.nth lines 0);
  Alcotest.(check string) "row1" "row1,1.5,2" (List.nth lines 1);
  Alcotest.(check string) "quoted label + padding" "\"ro,w2\",3.25," (List.nth lines 2)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Export.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Export.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Export.escape_field "a\"b")

let test_csv_too_many_values () =
  Alcotest.check_raises "overflow"
    (Invalid_argument "Export.csv_of_rows: too many values") (fun () ->
      ignore (Export.csv_of_rows ~columns:[ "a" ] [ ("x", [ 1.0; 2.0 ]) ]))

let test_csv_nan_blank () =
  let csv = Export.csv_of_rows ~columns:[ "a" ] [ ("x", [ Float.nan ]) ] in
  Alcotest.(check string) "nan blank" "x," (List.nth (String.split_on_char '\n' csv) 1)

let test_write_and_export_all () =
  let dir = Filename.temp_file "qaoa_export" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let paths =
    Export.export_all ~dir
      [ ("t1", [ "a" ], [ ("x", [ 1.0 ]) ]); ("t2", [ "b" ], []) ]
  in
  Alcotest.(check int) "two files" 2 (List.length paths);
  List.iter
    (fun p -> Alcotest.(check bool) ("exists " ^ p) true (Sys.file_exists p))
    paths;
  let ic = open_in (List.hd paths) in
  let header = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "workload,a" header

let suite =
  [
    ("flip delta exact", `Quick, test_flip_delta_matches_recomputation);
    ("local search local optimum", `Quick, test_local_search_reaches_local_optimum);
    ("baselines on C6", `Quick, test_baselines_on_known_optimum);
    ("annealing beats random", `Quick, test_sa_beats_random);
    ("annealing near brute force", `Slow, test_baselines_match_bruteforce_small);
    ("edge cases", `Quick, test_edge_cases);
    ("csv format", `Quick, test_csv_format);
    ("csv escaping", `Quick, test_csv_escaping);
    ("csv too many values", `Quick, test_csv_too_many_values);
    ("csv nan blank", `Quick, test_csv_nan_blank);
    ("write and export all", `Quick, test_write_and_export_all);
  ]
