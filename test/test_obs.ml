(* qaoa_obs: spans (nesting, exception unwinding), counters, histograms,
   JSONL / Chrome-trace export round-trips through the bundled JSON
   parser, and the disabled no-op guard. *)

module Config = Qaoa_obs.Config
module Trace = Qaoa_obs.Trace
module Metrics = Qaoa_obs.Metrics_registry
module Exporter = Qaoa_obs.Exporter
module Json = Qaoa_obs.Json

(* Every test runs against a clean, enabled registry and leaves tracing
   disabled so the rest of the suite (and the at-exit flush) sees the
   default state. *)
let with_tracing f () =
  Config.set (Some Config.Report);
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Config.set None;
      Trace.reset ();
      Metrics.reset ())
    f

let test_span_nesting () =
  let v =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 21) * 2)
  in
  Alcotest.(check int) "value threads through" 42 v;
  Alcotest.(check int) "stack unwound" 0 (Trace.current_depth ());
  match Trace.events () with
  | [ inner; outer ] ->
    (* completion order: child closes before parent *)
    Alcotest.(check string) "inner name" "inner" inner.Trace.name;
    Alcotest.(check string) "outer name" "outer" outer.Trace.name;
    Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
    Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
    Alcotest.(check int) "inner parent" outer.Trace.id inner.Trace.parent;
    Alcotest.(check int) "outer is root" (-1) outer.Trace.parent;
    Alcotest.(check bool) "parent covers child" true
      (outer.Trace.dur_wall >= inner.Trace.dur_wall)
  | evs ->
    Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_exception_unwinding () =
  (try
     Trace.with_span "outer" (fun () ->
         Trace.with_span "boom" (fun () -> failwith "exploded"))
   with Failure _ -> ());
  Alcotest.(check int) "stack unwound after raise" 0 (Trace.current_depth ());
  Alcotest.(check int) "both spans recorded" 2 (Trace.span_count ());
  let boom =
    List.find (fun ev -> ev.Trace.name = "boom") (Trace.events ())
  in
  (match List.assoc_opt "exn" boom.Trace.attrs with
  | Some (Trace.String msg) ->
    Alcotest.(check bool) "exn attr mentions failure" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "missing exn attribute on failed span");
  (* tracing still works after the unwind, at root depth *)
  Trace.with_span "after" (fun () -> ());
  let after =
    List.find (fun ev -> ev.Trace.name = "after") (Trace.events ())
  in
  Alcotest.(check int) "fresh root span" (-1) after.Trace.parent

let test_counters () =
  Metrics.incr "swaps";
  Metrics.incr "swaps" ~by:41;
  Metrics.incr "layers";
  Alcotest.(check int) "accumulates" 42 (Metrics.counter "swaps");
  Alcotest.(check int) "independent" 1 (Metrics.counter "layers");
  Alcotest.(check int) "absent is zero" 0 (Metrics.counter "nope");
  Alcotest.(check (list (pair string int)))
    "sorted dump"
    [ ("layers", 1); ("swaps", 42) ]
    (Metrics.counters ())

let test_histograms () =
  for i = 1 to 100 do
    Metrics.observe "layer_size" (float_of_int i)
  done;
  match Metrics.summary "layer_size" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 5050.0 s.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 100.0 s.Metrics.max;
    Alcotest.(check (float 1e-9)) "mean" 50.5 s.Metrics.mean;
    Alcotest.(check (float 1e-9)) "p50" 50.5 s.Metrics.p50;
    Alcotest.(check (float 1e-6)) "p90" 90.1 s.Metrics.p90;
    Alcotest.(check (float 1e-6)) "p99" 99.01 s.Metrics.p99

let test_jsonl_roundtrip () =
  Trace.with_span "compile" ~attrs:[ ("n", Trace.int 20) ] (fun () ->
      Trace.with_span "route" (fun () -> ()));
  Metrics.incr "swaps" ~by:7;
  Metrics.observe "layer_size" 3.0;
  let lines =
    Exporter.jsonl_string () |> String.trim |> String.split_on_char '\n'
  in
  Alcotest.(check int) "2 spans + 1 counter + 1 histogram" 4
    (List.length lines);
  let parsed = List.map Json.of_string lines in
  let types =
    List.map
      (fun j ->
        match Json.member "type" j with
        | Some (Json.String t) -> t
        | _ -> Alcotest.fail "line without type")
      parsed
  in
  Alcotest.(check (list string))
    "line types"
    [ "span"; "span"; "counter"; "histogram" ]
    types;
  let span_line = List.hd parsed in
  (match Json.member "name" span_line with
  | Some (Json.String "route") -> ()
  | _ -> Alcotest.fail "first line should be the route span");
  match Json.member "value" (List.nth parsed 2) with
  | Some (Json.Int 7) -> ()
  | _ -> Alcotest.fail "counter value lost in round-trip"

let test_chrome_roundtrip () =
  Trace.with_span "compile" (fun () ->
      Trace.with_span "route" (fun () -> ignore (Sys.opaque_identity 1)));
  Metrics.incr "swaps" ~by:3;
  let doc = Json.of_string (Exporter.chrome_string ()) in
  let evs =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents"
  in
  Alcotest.(check int) "one complete event per span" 2 (List.length evs);
  List.iter
    (fun ev ->
      (match Json.member "ph" ev with
      | Some (Json.String "X") -> ()
      | _ -> Alcotest.fail "expected complete events (ph=X)");
      match (Json.member "ts" ev, Json.member "dur" ev) with
      | Some ts, Some dur ->
        let ts = Option.get (Json.to_float ts) in
        let dur = Option.get (Json.to_float dur) in
        Alcotest.(check bool) "microsecond fields sane" true
          (Float.is_finite ts && dur >= 0.0)
      | _ -> Alcotest.fail "missing ts/dur")
    evs;
  match Json.member "otherData" doc with
  | Some other -> (
    match Json.member "counters" other with
    | Some (Json.Assoc [ ("swaps", Json.Int 3) ]) -> ()
    | _ -> Alcotest.fail "counters lost in chrome export")
  | None -> Alcotest.fail "missing otherData"

let test_disabled_noop () =
  (* NOT wrapped in with_tracing: tracing must be off here. *)
  Config.set None;
  Trace.reset ();
  Metrics.reset ();
  let ran = ref false in
  let v =
    Trace.with_span "ghost" (fun () ->
        ran := true;
        7)
  in
  Metrics.incr "ghost_counter" ~by:99;
  Metrics.observe "ghost_hist" 1.0;
  Trace.instant "ghost_marker";
  Alcotest.(check bool) "thunk still runs" true !ran;
  Alcotest.(check int) "value returned" 7 v;
  Alcotest.(check int) "no span recorded" 0 (Trace.span_count ());
  Alcotest.(check int) "no counter recorded" 0 (Metrics.counter "ghost_counter");
  Alcotest.(check bool) "no histogram recorded" true
    (Metrics.summary "ghost_hist" = None);
  (* timed still measures even when disabled *)
  let v, wall, cpu = Trace.timed "ghost_timed" (fun () -> 13) in
  Alcotest.(check int) "timed value" 13 v;
  Alcotest.(check bool) "timed measures" true (wall >= 0.0 && cpu >= 0.0);
  Alcotest.(check int) "timed records nothing" 0 (Trace.span_count ())

let test_buffer_cap () =
  Trace.set_max_events 3;
  Fun.protect
    ~finally:(fun () -> Trace.set_max_events 1_000_000)
    (fun () ->
      for _ = 1 to 5 do
        Trace.with_span "s" (fun () -> ())
      done;
      Alcotest.(check int) "capped" 3 (Trace.span_count ());
      Alcotest.(check int) "drops counted" 2 (Trace.dropped_count ()))

let test_json_parser () =
  let v =
    Json.Assoc
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Assoc [] ]);
      ]
  in
  Alcotest.(check bool) "round-trip" true
    (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool) "garbage rejected" true
    (Json.of_string_opt "{\"unterminated\": " = None);
  Alcotest.(check bool) "trailing garbage rejected" true
    (Json.of_string_opt "{} x" = None);
  Alcotest.(check bool) "non-finite floats become null" true
    (Json.to_string (Json.Float Float.nan) = "null")

let test_config_parsing () =
  Alcotest.(check bool) "report" true
    (Config.sink_of_string "report" = Some Config.Report);
  Alcotest.(check bool) "JSONL case-insensitive" true
    (Config.sink_of_string "JSONL" = Some Config.Jsonl);
  Alcotest.(check bool) "chrome" true
    (Config.sink_of_string "chrome" = Some Config.Chrome);
  Alcotest.(check bool) "unknown" true (Config.sink_of_string "tsv" = None)

let test_report_renders () =
  Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
  Metrics.incr "c";
  Metrics.observe "h" 2.0;
  let s = Exporter.report_string () in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in report") true (contains needle))
    [ "a"; "b"; "counters:"; "histograms" ]

let suite =
  [
    Alcotest.test_case "span nesting" `Quick (with_tracing test_span_nesting);
    Alcotest.test_case "span exception unwinding" `Quick
      (with_tracing test_span_exception_unwinding);
    Alcotest.test_case "counters" `Quick (with_tracing test_counters);
    Alcotest.test_case "histogram aggregation" `Quick
      (with_tracing test_histograms);
    Alcotest.test_case "jsonl round-trip" `Quick
      (with_tracing test_jsonl_roundtrip);
    Alcotest.test_case "chrome trace round-trip" `Quick
      (with_tracing test_chrome_roundtrip);
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "span buffer cap" `Quick (with_tracing test_buffer_cap);
    Alcotest.test_case "json parse/print round-trip" `Quick test_json_parser;
    Alcotest.test_case "QAOA_TRACE value parsing" `Quick test_config_parsing;
    Alcotest.test_case "report renders" `Quick (with_tracing test_report_renders);
  ]
