(* qaoa_obs: spans (nesting, exception unwinding), counters, histograms,
   JSONL / Chrome-trace export round-trips through the bundled JSON
   parser, and the disabled no-op guard. *)

module Config = Qaoa_obs.Config
module Trace = Qaoa_obs.Trace
module Metrics = Qaoa_obs.Metrics_registry
module Exporter = Qaoa_obs.Exporter
module Json = Qaoa_obs.Json
module Snapshot = Qaoa_obs.Snapshot
module Expose = Qaoa_obs.Expose
module Flamegraph = Qaoa_obs.Flamegraph
module Bench_diff = Qaoa_obs.Bench_diff

(* Every test runs against a clean, enabled registry and leaves tracing
   disabled so the rest of the suite (and the at-exit flush) sees the
   default state. *)
let with_tracing f () =
  Config.set (Some Config.Report);
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Config.set None;
      Trace.reset ();
      Metrics.reset ())
    f

let test_span_nesting () =
  let v =
    Trace.with_span "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 21) * 2)
  in
  Alcotest.(check int) "value threads through" 42 v;
  Alcotest.(check int) "stack unwound" 0 (Trace.current_depth ());
  match Trace.events () with
  | [ inner; outer ] ->
    (* completion order: child closes before parent *)
    Alcotest.(check string) "inner name" "inner" inner.Trace.name;
    Alcotest.(check string) "outer name" "outer" outer.Trace.name;
    Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
    Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
    Alcotest.(check int) "inner parent" outer.Trace.id inner.Trace.parent;
    Alcotest.(check int) "outer is root" (-1) outer.Trace.parent;
    Alcotest.(check bool) "parent covers child" true
      (outer.Trace.dur_wall >= inner.Trace.dur_wall)
  | evs ->
    Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_exception_unwinding () =
  (try
     Trace.with_span "outer" (fun () ->
         Trace.with_span "boom" (fun () -> failwith "exploded"))
   with Failure _ -> ());
  Alcotest.(check int) "stack unwound after raise" 0 (Trace.current_depth ());
  Alcotest.(check int) "both spans recorded" 2 (Trace.span_count ());
  let boom =
    List.find (fun ev -> ev.Trace.name = "boom") (Trace.events ())
  in
  (match List.assoc_opt "exn" boom.Trace.attrs with
  | Some (Trace.String msg) ->
    Alcotest.(check bool) "exn attr mentions failure" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "missing exn attribute on failed span");
  (* tracing still works after the unwind, at root depth *)
  Trace.with_span "after" (fun () -> ());
  let after =
    List.find (fun ev -> ev.Trace.name = "after") (Trace.events ())
  in
  Alcotest.(check int) "fresh root span" (-1) after.Trace.parent

let test_counters () =
  Metrics.incr "swaps";
  Metrics.incr "swaps" ~by:41;
  Metrics.incr "layers";
  Alcotest.(check int) "accumulates" 42 (Metrics.counter "swaps");
  Alcotest.(check int) "independent" 1 (Metrics.counter "layers");
  Alcotest.(check int) "absent is zero" 0 (Metrics.counter "nope");
  Alcotest.(check (list (pair string int)))
    "sorted dump"
    [ ("layers", 1); ("swaps", 42) ]
    (Metrics.counters ())

let test_histograms () =
  for i = 1 to 100 do
    Metrics.observe "layer_size" (float_of_int i)
  done;
  match Metrics.summary "layer_size" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
    Alcotest.(check int) "count" 100 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 5050.0 s.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 100.0 s.Metrics.max;
    Alcotest.(check (float 1e-9)) "mean" 50.5 s.Metrics.mean;
    Alcotest.(check (float 1e-9)) "p50" 50.5 s.Metrics.p50;
    Alcotest.(check (float 1e-6)) "p90" 90.1 s.Metrics.p90;
    Alcotest.(check (float 1e-6)) "p99" 99.01 s.Metrics.p99

let test_jsonl_roundtrip () =
  Trace.with_span "compile" ~attrs:[ ("n", Trace.int 20) ] (fun () ->
      Trace.with_span "route" (fun () -> ()));
  Metrics.incr "swaps" ~by:7;
  Metrics.observe "layer_size" 3.0;
  let lines =
    Exporter.jsonl_string () |> String.trim |> String.split_on_char '\n'
  in
  Alcotest.(check int) "2 spans + 1 counter + 1 histogram" 4
    (List.length lines);
  let parsed = List.map Json.of_string lines in
  let types =
    List.map
      (fun j ->
        match Json.member "type" j with
        | Some (Json.String t) -> t
        | _ -> Alcotest.fail "line without type")
      parsed
  in
  Alcotest.(check (list string))
    "line types"
    [ "span"; "span"; "counter"; "histogram" ]
    types;
  let span_line = List.hd parsed in
  (match Json.member "name" span_line with
  | Some (Json.String "route") -> ()
  | _ -> Alcotest.fail "first line should be the route span");
  match Json.member "value" (List.nth parsed 2) with
  | Some (Json.Int 7) -> ()
  | _ -> Alcotest.fail "counter value lost in round-trip"

let test_chrome_roundtrip () =
  Trace.with_span "compile" (fun () ->
      Trace.with_span "route" (fun () -> ignore (Sys.opaque_identity 1)));
  Metrics.incr "swaps" ~by:3;
  let doc = Json.of_string (Exporter.chrome_string ()) in
  let all_evs =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "missing traceEvents"
  in
  let is_meta ev = Json.member "ph" ev = Some (Json.String "M") in
  (* every domain lane is named through a thread_name metadata event *)
  Alcotest.(check bool)
    "thread_name metadata present" true
    (List.exists
       (fun ev ->
         is_meta ev && Json.member "name" ev = Some (Json.String "thread_name"))
       all_evs);
  let evs = List.filter (fun ev -> not (is_meta ev)) all_evs in
  Alcotest.(check int) "one complete event per span" 2 (List.length evs);
  List.iter
    (fun ev ->
      (match Json.member "ph" ev with
      | Some (Json.String "X") -> ()
      | _ -> Alcotest.fail "expected complete events (ph=X)");
      (match Json.member "tid" ev with
      | Some (Json.Int _) -> ()
      | _ -> Alcotest.fail "expected a domain id as tid");
      match (Json.member "ts" ev, Json.member "dur" ev) with
      | Some ts, Some dur ->
        let ts = Option.get (Json.to_float ts) in
        let dur = Option.get (Json.to_float dur) in
        Alcotest.(check bool) "microsecond fields sane" true
          (Float.is_finite ts && dur >= 0.0)
      | _ -> Alcotest.fail "missing ts/dur")
    evs;
  match Json.member "otherData" doc with
  | Some other -> (
    match Json.member "counters" other with
    | Some (Json.Assoc [ ("swaps", Json.Int 3) ]) -> ()
    | _ -> Alcotest.fail "counters lost in chrome export")
  | None -> Alcotest.fail "missing otherData"

let test_disabled_noop () =
  (* NOT wrapped in with_tracing: tracing must be off here. *)
  Config.set None;
  Trace.reset ();
  Metrics.reset ();
  let ran = ref false in
  let v =
    Trace.with_span "ghost" (fun () ->
        ran := true;
        7)
  in
  Metrics.incr "ghost_counter" ~by:99;
  Metrics.observe "ghost_hist" 1.0;
  Trace.instant "ghost_marker";
  Alcotest.(check bool) "thunk still runs" true !ran;
  Alcotest.(check int) "value returned" 7 v;
  Alcotest.(check int) "no span recorded" 0 (Trace.span_count ());
  Alcotest.(check int) "no counter recorded" 0 (Metrics.counter "ghost_counter");
  Alcotest.(check bool) "no histogram recorded" true
    (Metrics.summary "ghost_hist" = None);
  (* timed still measures even when disabled *)
  let v, wall, cpu = Trace.timed "ghost_timed" (fun () -> 13) in
  Alcotest.(check int) "timed value" 13 v;
  Alcotest.(check bool) "timed measures" true (wall >= 0.0 && cpu >= 0.0);
  Alcotest.(check int) "timed records nothing" 0 (Trace.span_count ())

let test_buffer_cap () =
  Trace.set_max_events 3;
  Fun.protect
    ~finally:(fun () -> Trace.set_max_events 1_000_000)
    (fun () ->
      for _ = 1 to 5 do
        Trace.with_span "s" (fun () -> ())
      done;
      Alcotest.(check int) "capped" 3 (Trace.span_count ());
      Alcotest.(check int) "drops counted" 2 (Trace.dropped_count ()))

let test_json_parser () =
  let v =
    Json.Assoc
      [
        ("s", Json.String "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Assoc [] ]);
      ]
  in
  Alcotest.(check bool) "round-trip" true
    (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool) "garbage rejected" true
    (Json.of_string_opt "{\"unterminated\": " = None);
  Alcotest.(check bool) "trailing garbage rejected" true
    (Json.of_string_opt "{} x" = None);
  Alcotest.(check bool) "non-finite floats become null" true
    (Json.to_string (Json.Float Float.nan) = "null")

let test_config_parsing () =
  Alcotest.(check bool) "report" true
    (Config.sink_of_string "report" = Some Config.Report);
  Alcotest.(check bool) "JSONL case-insensitive" true
    (Config.sink_of_string "JSONL" = Some Config.Jsonl);
  Alcotest.(check bool) "chrome" true
    (Config.sink_of_string "chrome" = Some Config.Chrome);
  Alcotest.(check bool) "unknown" true (Config.sink_of_string "tsv" = None)

let test_report_renders () =
  Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
  Metrics.incr "c";
  Metrics.observe "h" 2.0;
  let s = Exporter.report_string () in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec at i = i + n <= m && (String.sub s i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in report") true (contains needle))
    [ "a"; "b"; "counters:"; "histograms" ]

(* Satellite invariant: reads are pure. Reading the registry (or
   capturing a snapshot) twice with no intervening recording must yield
   identical results — a drain-and-add reader would double-count. *)
let test_reads_are_pure () =
  Metrics.incr "pure.counter" ~by:5;
  for i = 1 to 10 do
    Metrics.observe "pure.hist" (float_of_int i)
  done;
  Trace.with_span "pure.span" (fun () -> ());
  let c1 = Metrics.counters () and c2 = Metrics.counters () in
  Alcotest.(check bool) "counters read twice equal" true (c1 = c2);
  let h1 = Metrics.histograms () and h2 = Metrics.histograms () in
  Alcotest.(check bool) "histograms read twice equal" true (h1 = h2);
  let s1 = Snapshot.capture () and s2 = Snapshot.capture () in
  Alcotest.(check bool) "snapshots equal" true (Snapshot.equal s1 s2);
  (match Metrics.summary "pure.hist" with
  | Some s ->
    Alcotest.(check int) "count exact after repeated reads" 10 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum exact" 55.0 s.Metrics.sum
  | None -> Alcotest.fail "histogram missing");
  Alcotest.(check int) "counter exact" 5 (Metrics.counter "pure.counter")

(* Satellite fix: when the event buffer is full, a close (including an
   exception unwind) drops the event but must still restore the
   domain-local span stack. *)
let test_buffer_full_unwind () =
  Trace.set_max_events 1;
  Fun.protect
    ~finally:(fun () -> Trace.set_max_events 1_000_000)
    (fun () ->
      (try
         Trace.with_span "outer" (fun () ->
             Trace.with_span "inner" (fun () ->
                 Trace.with_span "boom" (fun () -> failwith "exploded")))
       with Failure _ -> ());
      Alcotest.(check int) "stack restored despite drops" 0
        (Trace.current_depth ());
      Alcotest.(check int) "only one span buffered" 1 (Trace.span_count ());
      Alcotest.(check int) "the rest counted as dropped" 2
        (Trace.dropped_count ());
      (* recording still works at root depth after the unwind *)
      Trace.reset ();
      Trace.with_span "after" (fun () -> ());
      match Trace.events () with
      | [ ev ] ->
        Alcotest.(check string) "fresh span name" "after" ev.Trace.name;
        Alcotest.(check int) "fresh root parent" (-1) ev.Trace.parent;
        Alcotest.(check int) "fresh root depth" 0 ev.Trace.depth
      | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs))

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec at i =
    i + n <= m && (String.sub haystack i n = needle || at (i + 1))
  in
  at 0

let test_prometheus_exposition () =
  Metrics.incr "router.swaps_inserted" ~by:7;
  for i = 1 to 100 do
    Metrics.observe "router.layer_size" (float_of_int i)
  done;
  Trace.with_span "core.compile" (fun () -> ());
  let text = Expose.prometheus_string () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains text needle))
    [
      "# TYPE qaoa_router_swaps_inserted counter";
      "qaoa_router_swaps_inserted 7";
      "# TYPE qaoa_router_layer_size summary";
      "qaoa_router_layer_size{quantile=\"0.5\"}";
      "qaoa_router_layer_size_count 100";
      "qaoa_router_layer_size_sum 5050";
      "qaoa_span_count{name=\"core.compile\"} 1";
      "qaoa_span_wall_seconds_total{name=\"core.compile\"}";
      "qaoa_dropped_spans_total 0";
    ]

let test_json_exposition () =
  Metrics.incr "swaps" ~by:3;
  Metrics.observe "h" 2.0;
  Trace.with_span "c" (fun () -> ());
  let doc = Json.of_string (Expose.json_string ()) in
  (match Option.bind (Json.member "counters" doc) (Json.member "swaps") with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "counter lost in json exposition");
  (match
     Option.bind (Json.member "histograms" doc) (fun h ->
         Option.bind (Json.member "h" h) (Json.member "count"))
   with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "histogram count lost");
  match
    Option.bind (Json.member "spans" doc) (fun s ->
        Option.bind (Json.member "c" s) (Json.member "count"))
  with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "span roll-up lost"

(* Deterministic flamegraph check on a hand-built snapshot: self time is
   a span's wall duration minus its direct children's. *)
let test_flamegraph_folded () =
  let ev ?(domain = 0) ~id ~parent ~depth ~start ~dur name =
    {
      Trace.name;
      id;
      parent;
      depth;
      domain;
      start_wall = start;
      dur_wall = dur;
      dur_cpu = dur;
      attrs = [];
    }
  in
  let snapshot =
    {
      Snapshot.counters = [];
      histograms = [];
      spans =
        [
          ev ~id:0 ~parent:(-1) ~depth:0 ~start:0.0 ~dur:0.010 "compile";
          ev ~id:1 ~parent:0 ~depth:1 ~start:0.001 ~dur:0.004 "route";
          ev ~id:2 ~parent:0 ~depth:1 ~start:0.006 ~dur:0.002 "route";
        ];
      dropped_spans = 0;
    }
  in
  let folded = Flamegraph.folded ~snapshot () in
  Alcotest.(check int) "two distinct stacks" 2 (List.length folded);
  (match List.assoc_opt "compile" folded with
  | Some self -> Alcotest.(check (float 1e-9)) "parent self time" 0.004 self
  | None -> Alcotest.fail "missing root stack");
  (match List.assoc_opt "compile;route" folded with
  | Some self ->
    Alcotest.(check (float 1e-9)) "leaf self time aggregates" 0.006 self
  | None -> Alcotest.fail "missing leaf stack");
  let text = Flamegraph.folded_string ~snapshot () in
  Alcotest.(check bool) "folded lines" true
    (contains text "compile 4000\n" && contains text "compile;route 6000\n");
  (* multi-domain streams get a synthetic per-domain root frame *)
  let multi =
    {
      snapshot with
      Snapshot.spans =
        [
          ev ~id:0 ~parent:(-1) ~depth:0 ~start:0.0 ~dur:0.010 "compile";
          ev ~domain:3 ~id:1 ~parent:(-1) ~depth:0 ~start:0.0 ~dur:0.010
            "compile";
        ];
    }
  in
  let folded = Flamegraph.folded ~snapshot:multi () in
  Alcotest.(check bool) "per-domain roots" true
    (List.mem_assoc "domain-0;compile" folded
    && List.mem_assoc "domain-3;compile" folded)

let bench_doc kernels resilience =
  Json.Assoc
    [
      ("schema_version", Json.Int 1);
      ("scale", Json.String "smoke");
      ( "kernels",
        Json.Assoc
          (List.map
             (fun (name, ms) ->
               (name, Json.Assoc [ ("ms_per_run", Json.Float ms) ]))
             kernels) );
      ( "resilience",
        Json.Assoc (List.map (fun (k, v) -> (k, Json.Int v)) resilience) );
    ]

let test_bench_diff () =
  let baseline =
    bench_doc
      [ ("a", 1.0); ("b", 2.0); ("tiny", 0.001) ]
      [ ("instances", 10); ("compiled", 10); ("exhausted", 0) ]
  in
  (* identity: comparing a baseline with itself is clean *)
  let self =
    Bench_diff.compare_docs ~baseline ~current:baseline ()
  in
  Alcotest.(check bool) "self-diff passes" false (Bench_diff.regressed self);
  (* a 3x slowdown on b and a new exhausted compile both gate *)
  let current =
    bench_doc
      [ ("a", 1.5); ("b", 6.0); ("tiny", 0.5) ]
      [ ("instances", 10); ("compiled", 9); ("exhausted", 1) ]
  in
  let report = Bench_diff.compare_docs ~baseline ~current () in
  Alcotest.(check int) "two gated regressions" 2 (Bench_diff.regressions report);
  let status_of metric =
    match
      List.find_opt (fun r -> r.Bench_diff.metric = metric) report.Bench_diff.rows
    with
    | Some r -> r.Bench_diff.status
    | None -> Alcotest.failf "row %s missing" metric
  in
  Alcotest.(check bool) "+50%% within default gate" true
    (status_of "kernel.a" = Bench_diff.Pass);
  Alcotest.(check bool) "3x slowdown regresses" true
    (status_of "kernel.b" = Bench_diff.Regressed);
  Alcotest.(check bool) "below noise floor is informational" true
    (status_of "kernel.tiny" = Bench_diff.Info);
  Alcotest.(check bool) "exhausted increase regresses" true
    (status_of "resilience.exhausted" = Bench_diff.Regressed);
  (* per-metric override loosens the gate *)
  let loose =
    Bench_diff.compare_docs ~overrides:[ ("kernel.b", 5.0) ] ~baseline ~current
      ()
  in
  Alcotest.(check bool) "override unblocks kernel.b" true
    (List.exists
       (fun r ->
         r.Bench_diff.metric = "kernel.b" && r.Bench_diff.status = Bench_diff.Pass)
       loose.Bench_diff.rows);
  (* a gated kernel vanishing from the current run is a broken contract *)
  let removed =
    Bench_diff.compare_docs ~baseline
      ~current:
        (bench_doc [ ("a", 1.0) ] [ ("instances", 10); ("exhausted", 0) ])
      ()
  in
  Alcotest.(check bool) "removed kernel regresses" true
    (Bench_diff.regressed removed);
  (* text and json reports render *)
  Alcotest.(check bool) "text report mentions REGRESSED" true
    (contains (Bench_diff.to_text report) "REGRESSED");
  match Json.member "regressions" (Bench_diff.to_json report) with
  | Some (Json.Int 2) -> ()
  | _ -> Alcotest.fail "json report regression count"

let suite =
  [
    Alcotest.test_case "span nesting" `Quick (with_tracing test_span_nesting);
    Alcotest.test_case "span exception unwinding" `Quick
      (with_tracing test_span_exception_unwinding);
    Alcotest.test_case "counters" `Quick (with_tracing test_counters);
    Alcotest.test_case "histogram aggregation" `Quick
      (with_tracing test_histograms);
    Alcotest.test_case "jsonl round-trip" `Quick
      (with_tracing test_jsonl_roundtrip);
    Alcotest.test_case "chrome trace round-trip" `Quick
      (with_tracing test_chrome_roundtrip);
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "span buffer cap" `Quick (with_tracing test_buffer_cap);
    Alcotest.test_case "json parse/print round-trip" `Quick test_json_parser;
    Alcotest.test_case "QAOA_TRACE value parsing" `Quick test_config_parsing;
    Alcotest.test_case "report renders" `Quick (with_tracing test_report_renders);
    Alcotest.test_case "reads are pure (no double count)" `Quick
      (with_tracing test_reads_are_pure);
    Alcotest.test_case "buffer-full exception unwind" `Quick
      (with_tracing test_buffer_full_unwind);
    Alcotest.test_case "prometheus exposition" `Quick
      (with_tracing test_prometheus_exposition);
    Alcotest.test_case "json exposition" `Quick (with_tracing test_json_exposition);
    Alcotest.test_case "flamegraph folded stacks" `Quick test_flamegraph_folded;
    Alcotest.test_case "bench regression diff" `Quick test_bench_diff;
  ]
