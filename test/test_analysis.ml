(* qaoa_analysis: the phase-polynomial canonicalizer (unit equivalences,
   corruption witnesses, qcheck cross-check against the statevector
   oracle) and the lint rule engine (each rule firing and silent, exit
   codes, JSON round-trip), plus the large-register acceptance case: a
   20-qubit compile gets a definite semantic verdict under every policy. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Topologies = Qaoa_hardware.Topologies
module Phase_poly = Qaoa_analysis.Phase_poly
module Lint = Qaoa_analysis.Lint
module Commute = Qaoa_analysis.Commute
module Dataflow = Qaoa_analysis.Dataflow
module Layering = Qaoa_circuit.Layering
module Decompose = Qaoa_circuit.Decompose
module Metrics = Qaoa_circuit.Metrics
module Check = Qaoa_verify.Check
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Differential = Qaoa_experiments.Differential
module Generators = Qaoa_graph.Generators
module Statevector = Qaoa_sim.Statevector
module Json = Qaoa_obs.Json
module Rng = Qaoa_util.Rng

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let verdict_equivalent = function Phase_poly.Equivalent -> true | _ -> false

(* --- canonicalizer unit equivalences ------------------------------- *)

let test_known_identities () =
  let eq name a b =
    let va = Phase_poly.equal_up_to_global_phase (Circuit.of_gates 2 a)
        (Circuit.of_gates 2 b)
    in
    Alcotest.(check bool) name true (verdict_equivalent va)
  in
  (* CPHASE = CNOT; RZ(target); CNOT, up to global phase *)
  eq "cphase decomposition"
    [ Gate.Cphase (0, 1, 0.7) ]
    [ Gate.Cnot (0, 1); Gate.Rz (1, 0.7); Gate.Cnot (0, 1) ];
  (* SWAP = three alternating CNOTs *)
  eq "swap decomposition"
    [ Gate.Swap (0, 1) ]
    [ Gate.Cnot (0, 1); Gate.Cnot (1, 0); Gate.Cnot (0, 1) ];
  (* CPHASE is symmetric in its operands *)
  eq "cphase symmetric" [ Gate.Cphase (0, 1, 1.1) ] [ Gate.Cphase (1, 0, 1.1) ];
  (* X conjugation flips a rotation's sign (complement folding) *)
  eq "x rz x = rz(-theta)"
    [ Gate.X 0; Gate.Rz (0, 0.9); Gate.X 0 ]
    [ Gate.Rz (0, -0.9) ];
  (* Z = Phase(pi) exactly; RZ = Phase up to global phase *)
  eq "z = u1(pi)" [ Gate.Z 0 ] [ Gate.Phase (0, Float.pi) ];
  eq "rz = u1 up to global" [ Gate.Rz (0, 0.4) ] [ Gate.Phase (0, 0.4) ];
  (* commuting diagonal reorder across shared wires *)
  eq "diagonal reorder"
    [ Gate.Cphase (0, 1, 0.3); Gate.Rz (0, 0.8); Gate.Cphase (0, 1, 0.4) ]
    [ Gate.Rz (0, 0.8); Gate.Cphase (0, 1, 0.7) ];
  (* and a genuinely different circuit is not equivalent *)
  let v =
    Phase_poly.equal_up_to_global_phase
      (Circuit.of_gates 2 [ Gate.Cnot (0, 1) ])
      (Circuit.of_gates 2 [ Gate.Cnot (1, 0) ])
  in
  match v with
  | Phase_poly.Inequivalent { detail; _ } ->
    Alcotest.(check bool) "witness names an output wire" true
      (contains_substring ~sub:"output wire" detail)
  | _ -> Alcotest.fail "reversed CNOT should be inequivalent"

let test_segmentation_shape () =
  (* H walls segment the circuit; blocks hold the non-linear gates *)
  let c =
    Circuit.of_gates 2
      [
        Gate.H 0; Gate.H 1;
        Gate.Cphase (0, 1, 0.7);
        Gate.Rx (0, 0.8); Gate.Rx (1, 0.8);
        Gate.Measure 0; Gate.Measure 1;
      ]
  in
  let s = Phase_poly.summarize c in
  Alcotest.(check int) "two blocks" 2 (List.length s.Phase_poly.blocks);
  Alcotest.(check int) "three segments" 3
    (List.length s.Phase_poly.segments);
  (* the middle segment holds the cost term on parity x0^x1 *)
  match List.nth s.Phase_poly.segments 1 with
  | { Phase_poly.terms = [ t ]; _ } ->
    Alcotest.(check string) "cost parity" "x0^x1"
      (Phase_poly.pp_parity t.Phase_poly.parity)
  | _ -> Alcotest.fail "expected exactly one phase term in the cost segment"

(* the acceptance-criterion witness: dropping one CPHASE from a QAOA
   ansatz is caught and attributed to the cost segment *)
let test_dropped_cphase_named () =
  let rng = Rng.create 5 in
  let graph = Generators.erdos_renyi rng ~n:8 ~p:0.5 in
  let problem = Problem.of_maxcut graph in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  let logical = Ansatz.circuit ~measure:true problem params in
  let gates = Circuit.gates logical in
  let dropped = ref false in
  let corrupted =
    Circuit.of_gates (Circuit.num_qubits logical)
      (List.filter
         (fun g ->
           match g with
           | Gate.Cphase _ when not !dropped ->
             dropped := true;
             false
           | _ -> true)
         gates)
  in
  Alcotest.(check bool) "a cphase was dropped" true !dropped;
  match Phase_poly.equal_up_to_global_phase logical corrupted with
  | Phase_poly.Inequivalent { segment; detail } ->
    (* segment 0 precedes the H wall; the cost layer is segment 1 *)
    Alcotest.(check int) "cost segment named" 1 segment;
    Alcotest.(check bool) "witness names the phase term" true
      (contains_substring ~sub:"phase term" detail)
  | v ->
    Alcotest.failf "expected inequivalent, got %s"
      (Phase_poly.verdict_to_string v)

let test_skeleton_mismatch_inconclusive () =
  let a = Circuit.of_gates 2 [ Gate.H 0; Gate.Rz (0, 0.3) ] in
  let b = Circuit.of_gates 2 [ Gate.H 1; Gate.Rz (0, 0.3) ] in
  (match Phase_poly.equal_up_to_global_phase a b with
  | Phase_poly.Inconclusive reason ->
    Alcotest.(check bool) "reason names the block" true
      (contains_substring ~sub:"block" reason)
  | v ->
    Alcotest.failf "expected inconclusive, got %s"
      (Phase_poly.verdict_to_string v));
  let c = Circuit.of_gates 2 [ Gate.Rz (0, 0.3) ] in
  match Phase_poly.equal_up_to_global_phase a c with
  | Phase_poly.Inconclusive reason ->
    Alcotest.(check bool) "reason counts the blocks" true
      (contains_substring ~sub:"1 vs 0" reason)
  | v ->
    Alcotest.failf "expected inconclusive, got %s"
      (Phase_poly.verdict_to_string v)

(* --- qcheck: phase-poly verdict == statevector verdict ------------- *)

let random_linear rng n len =
  let other a = (a + 1 + Rng.int rng (n - 1)) mod n in
  Circuit.of_gates n
    (List.init len (fun _ ->
         match Rng.int rng 6 with
         | 0 -> Gate.X (Rng.int rng n)
         | 1 -> Gate.Z (Rng.int rng n)
         | 2 -> Gate.Rz (Rng.int rng n, Rng.float rng 6.2 -. 3.1)
         | 3 ->
           let a = Rng.int rng n in
           Gate.Cnot (a, other a)
         | 4 ->
           let a = Rng.int rng n in
           Gate.Cphase (a, other a, Rng.float rng 6.2)
         | _ ->
           let a = Rng.int rng n in
           Gate.Swap (a, other a)))

(* Local rewrites that preserve the unitary up to global phase. *)
let equivalent_rewrite c =
  Circuit.of_gates (Circuit.num_qubits c)
    (List.concat_map
       (fun g ->
         match g with
         | Gate.Cphase (a, b, th) ->
           [ Gate.Cnot (a, b); Gate.Rz (b, th); Gate.Cnot (a, b) ]
         | Gate.Swap (a, b) ->
           [ Gate.Cnot (a, b); Gate.Cnot (b, a); Gate.Cnot (a, b) ]
         | Gate.Rz (q, th) -> [ Gate.Phase (q, th) ]
         | Gate.Z q -> [ Gate.Phase (q, Float.pi) ]
         | g -> [ g ])
       (Circuit.gates c))

let mutate rng c =
  let gates = Array.of_list (Circuit.gates c) in
  let i = Rng.int rng (Array.length gates) in
  (match Rng.int rng 3 with
  | 0 ->
    (* bump a rotation angle (or degrade to an X insert) *)
    gates.(i) <-
      (match gates.(i) with
      | Gate.Rz (q, th) -> Gate.Rz (q, th +. 0.5)
      | Gate.Cphase (a, b, th) -> Gate.Cphase (a, b, th +. 0.5)
      | g -> g)
  | 1 -> gates.(i) <- Gate.X (Rng.int rng (Circuit.num_qubits c))
  | _ ->
    (* swap in a reversed CNOT *)
    gates.(i) <-
      (match gates.(i) with Gate.Cnot (a, b) -> Gate.Cnot (b, a) | g -> g));
  Circuit.of_gates (Circuit.num_qubits c) (Array.to_list gates)

(* A random product state distinguishes two distinct affine-permutation
   x diagonal unitaries almost surely (unlike |0...0> or |+...+>, which
   both have large stabilizers). *)
let prep rng n =
  List.concat
    (List.init n (fun q ->
         [
           Gate.Ry (q, 0.3 +. Rng.float rng 2.4);
           Gate.Rz (q, Rng.float rng 6.2);
         ]))

let statevector_equal rng c1 c2 =
  let n = Circuit.num_qubits c1 in
  let p = prep rng n in
  let run c =
    Statevector.of_circuit
      (Circuit.of_gates n (p @ Circuit.gates c))
  in
  Statevector.equal_up_to_global_phase ~eps:1e-6 (run c1) (run c2)

let prop_verdict_matches_statevector =
  QCheck.Test.make
    ~name:"phase-poly verdict == statevector verdict (linear circuits)"
    ~count:80
    QCheck.(pair (int_bound 1_000_000) (int_range 2 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_linear rng n 25 in
      let partner, _expect_equal =
        if Rng.bool rng then (equivalent_rewrite c, true)
        else (mutate rng c, false)
      in
      let pp_equal =
        match Phase_poly.equal_up_to_global_phase c partner with
        | Phase_poly.Equivalent -> true
        | Phase_poly.Inequivalent _ -> false
        | Phase_poly.Inconclusive r ->
          QCheck.Test.fail_reportf
            "linear circuits must never be inconclusive: %s" r
      in
      pp_equal = statevector_equal rng c partner)

(* --- large-register acceptance ------------------------------------- *)

(* 20-qubit ER(0.5) on tokyo under all seven policies: past the
   statevector cutoff, every compile still gets a definite semantic
   verdict from the phase-polynomial oracle, agreeing with the
   structural stage. *)
let test_20q_semantic_verdict_all_policies () =
  let device = Differential.device_of_topology "tokyo" in
  let rng = Rng.create 20 in
  let graph = Generators.erdos_renyi rng ~n:20 ~p:0.5 in
  let problem = Problem.of_maxcut graph in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  let logical = Ansatz.circuit ~measure:true problem params in
  List.iter
    (fun strategy ->
      let options = { Compile.default_options with seed = 20 } in
      let r = Compile.compile ~options ~strategy device problem params in
      let report =
        Check.validate ~device ~initial:r.Compile.initial_mapping
          ~final:r.Compile.final_mapping ~swap_count:r.Compile.swap_count
          ~logical r.Compile.circuit
      in
      Alcotest.(check bool)
        (Compile.strategy_name strategy ^ " validates")
        true (Check.ok report);
      match report.Check.semantic with
      | Check.Checked { num_qubits = 20; method_ = Check.Phase_polynomial } ->
        ()
      | Check.Checked _ -> Alcotest.fail "expected the phase-poly oracle on 20 qubits"
      | Check.Skipped why -> Alcotest.fail ("semantic skipped: " ^ why))
    Differential.default_strategies

let test_default_options_env_override () =
  Unix.putenv "QAOA_MAX_SEMANTIC_QUBITS" "17";
  Alcotest.(check int) "env override" 17
    (Check.default_options ()).Check.max_semantic_qubits;
  Unix.putenv "QAOA_MAX_SEMANTIC_QUBITS" "not-a-number";
  Alcotest.(check int) "malformed ignored" Check.default_max_semantic_qubits
    (Check.default_options ()).Check.max_semantic_qubits

(* --- lint rules: firing and silent --------------------------------- *)

let rule_ids findings = List.map (fun f -> f.Lint.rule) findings

let lint ?device ?max_depth ?min_success_prob ?lower_bound_factor ~role gates
    ~n =
  Lint.run
    (Lint.context ?device ?max_depth ?min_success_prob ?lower_bound_factor
       ~role (Circuit.of_gates n gates))

let test_ql001_uncoupled_pair () =
  let device = Topologies.linear 3 in
  let fires =
    lint ~device ~role:Lint.Compiled ~n:3
      [ Gate.Cnot (0, 2); Gate.Measure 0; Gate.Measure 2 ]
  in
  Alcotest.(check bool) "fires" true (List.mem "QL001" (rule_ids fires));
  let silent =
    lint ~device ~role:Lint.Compiled ~n:3
      [ Gate.Cnot (0, 1); Gate.Measure 0; Gate.Measure 1 ]
  in
  Alcotest.(check bool) "silent" false (List.mem "QL001" (rule_ids silent));
  (* logical circuits are never judged against a coupling graph *)
  let logical =
    lint ~device ~role:Lint.Logical ~n:3 [ Gate.Cnot (0, 2) ]
  in
  Alcotest.(check bool) "logical role exempt" false
    (List.mem "QL001" (rule_ids logical))

let test_ql002_missing_calibration () =
  let device =
    Device.with_calibration (Topologies.linear 3)
      (Calibration.create [ (0, 1, 0.01) ])
  in
  let fires =
    lint ~device ~role:Lint.Compiled ~n:3 [ Gate.Cnot (1, 2) ]
  in
  Alcotest.(check (list string)) "fires once" [ "QL002" ] (rule_ids fires);
  let silent = lint ~device ~role:Lint.Compiled ~n:3 [ Gate.Cnot (0, 1) ] in
  Alcotest.(check bool) "calibrated edge silent" false
    (List.mem "QL002" (rule_ids silent));
  (* a device with no snapshot at all: rule skips (no data to lint) *)
  let bare = lint ~device:(Topologies.linear 3) ~role:Lint.Compiled ~n:3
      [ Gate.Cnot (1, 2) ]
  in
  Alcotest.(check bool) "no snapshot, no finding" false
    (List.mem "QL002" (rule_ids bare))

let test_ql003_gate_after_measure () =
  let fires =
    lint ~role:Lint.Logical ~n:2 [ Gate.Measure 0; Gate.H 0 ]
  in
  Alcotest.(check bool) "fires" true (List.mem "QL003" (rule_ids fires));
  let silent =
    lint ~role:Lint.Logical ~n:2 [ Gate.H 0; Gate.Measure 0; Gate.H 1 ]
  in
  Alcotest.(check bool) "silent" false (List.mem "QL003" (rule_ids silent))

let test_ql004_idle_qubit () =
  let fires = lint ~role:Lint.Logical ~n:3 [ Gate.H 0; Gate.Cnot (0, 1) ] in
  Alcotest.(check bool) "fires for qubit 2" true
    (List.exists
       (fun f ->
         f.Lint.rule = "QL004" && contains_substring ~sub:"qubit 2" f.Lint.message)
       fires);
  (* compiled circuits legitimately leave physical qubits idle *)
  let compiled = lint ~role:Lint.Compiled ~n:3 [ Gate.H 0 ] in
  Alcotest.(check bool) "compiled role exempt" false
    (List.mem "QL004" (rule_ids compiled))

let test_ql005_redundant_adjacent () =
  let fires = lint ~role:Lint.Logical ~n:2 [ Gate.H 0; Gate.H 0 ] in
  (match List.find_opt (fun f -> f.Lint.rule = "QL005") fires with
  | Some f -> Alcotest.(check (option (pair int int))) "span" (Some (0, 1)) f.Lint.gate_span
  | None -> Alcotest.fail "expected QL005");
  let silent =
    lint ~role:Lint.Logical ~n:2 [ Gate.H 0; Gate.Cnot (0, 1); Gate.H 0 ]
  in
  Alcotest.(check bool) "blocked pair silent" false
    (List.mem "QL005" (rule_ids silent))

let test_ql006_swap_sandwich () =
  let fires =
    lint ~role:Lint.Compiled ~n:2
      [ Gate.H 0; Gate.Swap (0, 1); Gate.Measure 0; Gate.Measure 1 ]
  in
  Alcotest.(check bool) "fires" true (List.mem "QL006" (rule_ids fires));
  let silent =
    lint ~role:Lint.Compiled ~n:2
      [ Gate.Swap (0, 1); Gate.H 0; Gate.Measure 0; Gate.Measure 1 ]
  in
  Alcotest.(check bool) "live wire silent" false
    (List.mem "QL006" (rule_ids silent))

let test_ql007_depth_budget () =
  let deep = [ Gate.H 0; Gate.H 0; Gate.H 0; Gate.H 0 ] in
  let fires = lint ~max_depth:2 ~role:Lint.Logical ~n:1 deep in
  Alcotest.(check bool) "fires" true (List.mem "QL007" (rule_ids fires));
  let silent = lint ~max_depth:100 ~role:Lint.Logical ~n:1 deep in
  Alcotest.(check bool) "big budget silent" false
    (List.mem "QL007" (rule_ids silent));
  let absent = lint ~role:Lint.Logical ~n:1 deep in
  Alcotest.(check bool) "no budget, no rule" false
    (List.mem "QL007" (rule_ids absent))

let test_ql008_success_probability () =
  let device =
    Device.with_calibration (Topologies.linear 3)
      (Calibration.uniform ~cnot_error:0.1 [ (0, 1); (1, 2) ])
  in
  let gates = [ Gate.Cnot (0, 1); Gate.Cnot (1, 2) ] in
  let fires =
    lint ~device ~min_success_prob:0.9 ~role:Lint.Compiled ~n:3 gates
  in
  Alcotest.(check bool) "0.81 < 0.9 fires" true
    (List.mem "QL008" (rule_ids fires));
  let silent =
    lint ~device ~min_success_prob:0.5 ~role:Lint.Compiled ~n:3 gates
  in
  Alcotest.(check bool) "0.81 >= 0.5 silent" false
    (List.mem "QL008" (rule_ids silent))

let test_ql009_critical_swap () =
  let fires =
    lint ~role:Lint.Compiled ~n:2
      [ Gate.Swap (0, 1); Gate.Measure 0; Gate.Measure 1 ]
  in
  Alcotest.(check bool) "zero-slack swap fires" true
    (List.mem "QL009" (rule_ids fires));
  (* a longer parallel chain on qubit 2 gives the swap slack *)
  let silent =
    lint ~role:Lint.Compiled ~n:3
      [
        Gate.H 2; Gate.H 2; Gate.H 2;
        Gate.Swap (0, 1); Gate.Measure 0; Gate.Measure 1;
      ]
  in
  Alcotest.(check bool) "slackful swap silent" false
    (List.mem "QL009" (rule_ids silent))

let test_ql010_missed_packing () =
  (* the two cphases commute yet the as-given schedule parks them 3
     idle layers apart on qubit 0 *)
  let fires =
    lint ~role:Lint.Logical ~n:3
      [
        Gate.Cphase (0, 1, 0.3);
        Gate.H 2; Gate.H 2; Gate.H 2; Gate.H 2;
        Gate.Cphase (0, 2, 0.4);
      ]
  in
  Alcotest.(check bool) "gap of 3 fires" true
    (List.mem "QL010" (rule_ids fires));
  let silent =
    lint ~role:Lint.Logical ~n:3
      [
        Gate.Cphase (0, 1, 0.3);
        Gate.H 2; Gate.H 2;
        Gate.Cphase (0, 2, 0.4);
      ]
  in
  Alcotest.(check bool) "small gap silent" false
    (List.mem "QL010" (rule_ids silent))

let test_ql011_measure_delay () =
  (* the barrier fences the measurement 5 idle layers past qubit 0's
     last gate *)
  let fires =
    lint ~role:Lint.Logical ~n:2
      [
        Gate.H 0;
        Gate.H 1; Gate.H 1; Gate.H 1; Gate.H 1; Gate.H 1; Gate.H 1;
        Gate.Barrier;
        Gate.Measure 0;
      ]
  in
  Alcotest.(check bool) "idle wire fires" true
    (List.mem "QL011" (rule_ids fires));
  let silent =
    lint ~role:Lint.Logical ~n:2
      [
        Gate.H 0;
        Gate.H 1; Gate.H 1; Gate.H 1;
        Gate.Barrier;
        Gate.Measure 0;
      ]
  in
  Alcotest.(check bool) "short idle silent" false
    (List.mem "QL011" (rule_ids silent))

let test_ql012_commuting_redundancy () =
  let fires =
    lint ~role:Lint.Logical ~n:2
      [ Gate.Cnot (0, 1); Gate.Rz (0, 0.5); Gate.Cnot (0, 1) ]
  in
  (match List.find_opt (fun f -> f.Lint.rule = "QL012") fires with
  | Some f ->
    Alcotest.(check (option (pair int int))) "span" (Some (0, 2))
      f.Lint.gate_span
  | None -> Alcotest.fail "expected QL012");
  (* plain-adjacent pairs stay QL005's business *)
  Alcotest.(check bool) "adjacent pair is not QL012" false
    (List.mem "QL012"
       (rule_ids (lint ~role:Lint.Logical ~n:2 [ Gate.H 0; Gate.H 0 ])));
  (* an H wall blocks commuting traversal: neither notion sees a pair *)
  let silent =
    lint ~role:Lint.Logical ~n:2
      [ Gate.Cnot (0, 1); Gate.H 0; Gate.Cnot (0, 1) ]
  in
  Alcotest.(check bool) "blocked silent" false
    (List.mem "QL012" (rule_ids silent))

let test_ql013_depth_above_bound () =
  (* an all-diagonal circuit whose as-given order wastes depth the
     commutation DAG can see; the budget factor is set empirically
     around the true waste ratio so the test tracks the analysis, not a
     hand-computed constant *)
  let gates =
    [
      Gate.Rz (0, 0.1); Gate.Cphase (0, 1, 0.3); Gate.Rz (1, 0.2);
      Gate.Cphase (1, 2, 0.4); Gate.Rz (2, 0.3);
    ]
  in
  let s = Dataflow.analyze (Decompose.circuit (Circuit.of_gates 3 gates)) in
  let ratio =
    float_of_int s.Dataflow.measured_depth
    /. float_of_int s.Dataflow.lower_bound
  in
  Alcotest.(check bool) "the circuit wastes depth" true (ratio > 1.1);
  let fires =
    lint ~lower_bound_factor:(ratio *. 0.9) ~role:Lint.Logical ~n:3 gates
  in
  Alcotest.(check bool) "budget below the ratio fires" true
    (List.mem "QL013" (rule_ids fires));
  let silent =
    lint ~lower_bound_factor:(ratio *. 1.1) ~role:Lint.Logical ~n:3 gates
  in
  Alcotest.(check bool) "budget above the ratio silent" false
    (List.mem "QL013" (rule_ids silent));
  let absent = lint ~role:Lint.Logical ~n:3 gates in
  Alcotest.(check bool) "no budget, no rule" false
    (List.mem "QL013" (rule_ids absent))

(* --- commutation DAG and dataflow ---------------------------------- *)

let test_commute_transitive_reduction () =
  let dag =
    Commute.build (Circuit.of_gates 1 [ Gate.H 0; Gate.H 0; Gate.H 0 ])
  in
  Alcotest.(check (list (pair int int)))
    "chain edges only" [ (0, 1); (1, 2) ] (Commute.edges dag);
  Alcotest.(check bool) "0 reaches 2 transitively" true
    (Commute.reachable dag 0 2);
  Alcotest.(check bool) "never backwards" false (Commute.reachable dag 2 0)

let test_commute_cost_layer_edge_free () =
  (* a 4-cycle's cost layer: all cphases commute pairwise, so the DAG
     has no edges and the lower bound is the busy bound of 2, not the
     as-given depth of 4 *)
  let c =
    Circuit.of_gates 4
      (List.map
         (fun (a, b) -> Gate.Cphase (a, b, 0.5))
         [ (0, 1); (1, 2); (2, 3); (3, 0) ])
  in
  let dag = Commute.build c in
  Alcotest.(check (list (pair int int))) "no edges" [] (Commute.edges dag);
  let s = Dataflow.analyze c in
  Alcotest.(check int) "critical path" 1 s.Dataflow.critical_path;
  Alcotest.(check int) "busy bound" 2 s.Dataflow.busy_bound;
  Alcotest.(check int) "lower bound" 2 s.Dataflow.lower_bound;
  Alcotest.(check int) "greedy achieves the bound" 2 s.Dataflow.asap_depth;
  Alcotest.(check int) "as-given order wastes" 4 s.Dataflow.measured_depth

let test_dataflow_slack_and_critical () =
  let df =
    Dataflow.of_circuit (Circuit.of_gates 2 [ Gate.H 0; Gate.H 0; Gate.H 1 ])
  in
  Alcotest.(check int) "h1 slack" 1 (Dataflow.slack df 2);
  Alcotest.(check int) "chain slack" 0 (Dataflow.slack df 0);
  Alcotest.(check bool) "chain critical" true (Dataflow.critical df 0);
  Alcotest.(check bool) "h1 not critical" false (Dataflow.critical df 2);
  Alcotest.(check bool) "critical edge" true (Dataflow.critical_edge df 0 1);
  let s = Dataflow.summary df in
  Alcotest.(check int) "total slack" 1 s.Dataflow.total_slack

let test_circuit_of_order_validation () =
  let dag =
    Commute.build (Circuit.of_gates 2 [ Gate.H 0; Gate.H 0; Gate.H 1 ])
  in
  (* h1 commutes with everything: any position is a valid extension *)
  let r = Commute.circuit_of_order dag [ 2; 0; 1 ] in
  Alcotest.(check int) "length preserved" 3 (Circuit.length r);
  Alcotest.check_raises "dependency violation rejected"
    (Invalid_argument
       "Commute.circuit_of_order: order places gate 1 before its dependency 0")
    (fun () -> ignore (Commute.circuit_of_order dag [ 1; 0; 2 ]));
  Alcotest.check_raises "non-permutation rejected"
    (Invalid_argument "Commute.circuit_of_order: not a permutation of node ids")
    (fun () -> ignore (Commute.circuit_of_order dag [ 0; 0; 2 ]))

(* --- qcheck: schedule-validity oracle ------------------------------ *)

(* Any topological order of the commutation DAG must denote the same
   unitary: checked by the phase-polynomial canonicalizer on every
   draw, and cross-checked against the statevector (the circuits are
   <= 10 qubits by construction). *)
let prop_reorder_oracle =
  QCheck.Test.make
    ~name:"random linear extensions are phase-poly and statevector equal"
    ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_range 2 10))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_linear rng n 25 in
      let dag = Commute.build c in
      let order = Commute.random_linear_extension rng dag in
      let r = Commute.circuit_of_order dag order in
      (match Phase_poly.equal_up_to_global_phase c r with
      | Phase_poly.Equivalent -> true
      | v ->
        QCheck.Test.fail_reportf "reorder not equivalent: %s"
          (Phase_poly.verdict_to_string v))
      && statevector_equal rng c r)

(* The depth chain the module documents, on circuits with measures and
   a barrier fence thrown in. *)
let prop_lower_bound_chain =
  QCheck.Test.make
    ~name:"lower_bound <= asap_depth <= measured depth" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 2 8))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let base = random_linear rng n 30 in
      let c =
        Circuit.of_gates n
          (Circuit.gates base
          @ (Gate.Barrier :: List.init n (fun q -> Gate.Measure q)))
      in
      let s = Dataflow.analyze c in
      s.Dataflow.lower_bound <= s.Dataflow.asap_depth
      && s.Dataflow.asap_depth <= s.Dataflow.measured_depth
      && s.Dataflow.measured_depth = Layering.depth c)

(* 20-qubit ER(0.5) on calibrated tokyo: every one of the 7 policies
   produces an artifact whose measured depth respects the
   policy-independent commutation lower bound. *)
let test_20q_static_bound_all_policies () =
  let device = Differential.device_of_topology "tokyo" in
  let rng = Rng.create 21 in
  let graph = Generators.erdos_renyi rng ~n:20 ~p:0.5 in
  let problem = Problem.of_maxcut graph in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  List.iter
    (fun strategy ->
      let options =
        { Compile.default_options with seed = 21; analyze = true }
      in
      let r = Compile.compile ~options ~strategy device problem params in
      let name = Compile.strategy_name strategy in
      match r.Compile.static with
      | None -> Alcotest.fail (name ^ ": analyze requested, no static record")
      | Some s ->
        Alcotest.(check bool) (name ^ ": positive bound") true
          (s.Dataflow.lower_bound > 0);
        Alcotest.(check bool) (name ^ ": lower bound <= depth") true
          (s.Dataflow.lower_bound <= r.Compile.metrics.Metrics.depth);
        Alcotest.(check int) (name ^ ": measured = metrics depth")
          r.Compile.metrics.Metrics.depth s.Dataflow.measured_depth;
        Alcotest.(check bool) (name ^ ": analyze phase recorded") true
          (List.exists
             (fun pt -> pt.Compile.phase = "analyze")
             r.Compile.phase_times))
    Differential.default_strategies

let test_clean_compiled_circuit_is_quiet () =
  (* a healthy compiled-and-optimized circuit never reports an ERROR *)
  let device = Differential.device_of_topology "melbourne" in
  let rng = Rng.create 9 in
  let graph = Generators.erdos_renyi rng ~n:8 ~p:0.4 in
  let problem = Problem.of_maxcut graph in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  let options = { Compile.default_options with seed = 9; lint = true } in
  let r =
    Compile.compile ~options ~strategy:(Compile.Ic None) device problem params
  in
  Alcotest.(check int) "no ERROR findings" 0
    (Lint.count Lint.Error r.Compile.lint_findings);
  Alcotest.(check bool) "lint phase recorded" true
    (List.exists (fun pt -> pt.Compile.phase = "lint") r.Compile.phase_times);
  (* lint off by default: no findings, no phase *)
  let r0 =
    Compile.compile
      ~options:{ Compile.default_options with seed = 9 }
      ~strategy:(Compile.Ic None) device problem params
  in
  Alcotest.(check (list string)) "lint off: no findings" []
    (rule_ids r0.Compile.lint_findings);
  Alcotest.(check bool) "lint off: no phase" false
    (List.exists (fun pt -> pt.Compile.phase = "lint") r0.Compile.phase_times)

(* --- exit codes, registry, reporters ------------------------------- *)

let finding rule severity =
  {
    Lint.rule;
    severity;
    message = "m";
    gate_span = Some (1, 2);
    fix_hint = None;
  }

let test_exit_codes () =
  Alcotest.(check int) "clean" 0 (Lint.exit_code []);
  Alcotest.(check int) "info only" 0 (Lint.exit_code [ finding "a" Lint.Info ]);
  Alcotest.(check int) "warn not denied" 0
    (Lint.exit_code [ finding "a" Lint.Warn ]);
  Alcotest.(check int) "warn denied" 1
    (Lint.exit_code ~deny:Lint.Warn [ finding "a" Lint.Warn ]);
  Alcotest.(check int) "info denied at info" 1
    (Lint.exit_code ~deny:Lint.Info [ finding "a" Lint.Info ]);
  Alcotest.(check int) "error always 2" 2
    (Lint.exit_code ~deny:Lint.Warn
       [ finding "a" Lint.Warn; finding "b" Lint.Error ])

let test_severity_order_and_names () =
  Alcotest.(check bool) "info < warn" true
    (Lint.severity_compare Lint.Info Lint.Warn < 0);
  Alcotest.(check bool) "warn < error" true
    (Lint.severity_compare Lint.Warn Lint.Error < 0);
  List.iter
    (fun s ->
      Alcotest.(check bool) "name round-trips" true
        (Lint.severity_of_string (Lint.severity_name s) = Some s))
    [ Lint.Info; Lint.Warn; Lint.Error ];
  Alcotest.(check bool) "max severity" true
    (Lint.max_severity [ finding "a" Lint.Info; finding "b" Lint.Error ]
    = Some Lint.Error);
  Alcotest.(check bool) "empty max" true (Lint.max_severity [] = None)

let test_register_duplicate_rejected () =
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Lint.register: duplicate rule id QL001") (fun () ->
      Lint.register
        {
          Lint.id = "QL001";
          name = "dup";
          severity = Lint.Info;
          roles = [];
          check = (fun _ -> []);
        })

let test_json_round_trip () =
  let findings =
    [
      finding "QL001" Lint.Error;
      { (finding "QL007" Lint.Warn) with Lint.gate_span = None };
      { (finding "QL004" Lint.Info) with Lint.fix_hint = Some "shrink it" };
    ]
  in
  let json = Lint.report_to_json findings in
  (* through the actual serializer and parser, as the CI gate does *)
  match Lint.report_of_json (Json.of_string (Json.to_string json)) with
  | Ok parsed -> Alcotest.(check bool) "identical" true (parsed = findings)
  | Error e -> Alcotest.fail ("round trip failed: " ^ e)

let test_text_report_shape () =
  let text =
    Lint.to_text
      [
        { (finding "QL001" Lint.Error) with Lint.fix_hint = Some "reroute" };
        finding "QL004" Lint.Info;
      ]
  in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("mentions " ^ sub) true
        (contains_substring ~sub text))
    [ "ERROR"; "QL001"; "fix: reroute"; "1 error(s)"; "1 info(s)" ]

let suite =
  [
    ("phase-poly known identities", `Quick, test_known_identities);
    ("phase-poly segmentation shape", `Quick, test_segmentation_shape);
    ("dropped cphase named by segment", `Quick, test_dropped_cphase_named);
    ("skeleton mismatch is inconclusive", `Quick,
     test_skeleton_mismatch_inconclusive);
    QCheck_alcotest.to_alcotest prop_verdict_matches_statevector;
    ("20-qubit semantic verdict, all policies", `Quick,
     test_20q_semantic_verdict_all_policies);
    ("check options env override", `Quick, test_default_options_env_override);
    ("QL001 uncoupled pair", `Quick, test_ql001_uncoupled_pair);
    ("QL002 missing calibration", `Quick, test_ql002_missing_calibration);
    ("QL003 gate after measure", `Quick, test_ql003_gate_after_measure);
    ("QL004 idle qubit", `Quick, test_ql004_idle_qubit);
    ("QL005 redundant adjacent", `Quick, test_ql005_redundant_adjacent);
    ("QL006 swap sandwich", `Quick, test_ql006_swap_sandwich);
    ("QL007 depth budget", `Quick, test_ql007_depth_budget);
    ("QL008 success probability", `Quick, test_ql008_success_probability);
    ("QL009 critical swap", `Quick, test_ql009_critical_swap);
    ("QL010 missed packing", `Quick, test_ql010_missed_packing);
    ("QL011 measure delay", `Quick, test_ql011_measure_delay);
    ("QL012 commuting redundancy", `Quick, test_ql012_commuting_redundancy);
    ("QL013 depth above bound", `Quick, test_ql013_depth_above_bound);
    ("commute transitive reduction", `Quick, test_commute_transitive_reduction);
    ("commute cost layer edge-free", `Quick, test_commute_cost_layer_edge_free);
    ("dataflow slack and critical path", `Quick,
     test_dataflow_slack_and_critical);
    ("circuit_of_order validation", `Quick, test_circuit_of_order_validation);
    QCheck_alcotest.to_alcotest prop_reorder_oracle;
    QCheck_alcotest.to_alcotest prop_lower_bound_chain;
    ("20-qubit static bound, all policies", `Quick,
     test_20q_static_bound_all_policies);
    ("clean compile lints quiet", `Quick, test_clean_compiled_circuit_is_quiet);
    ("lint exit codes", `Quick, test_exit_codes);
    ("severity order and names", `Quick, test_severity_order_and_names);
    ("duplicate rule id rejected", `Quick, test_register_duplicate_rejected);
    ("lint report JSON round-trip", `Quick, test_json_round_trip);
    ("lint text report shape", `Quick, test_text_report_shape);
  ]
