(* Tests for device topologies, calibration and profiling.  Anchored to
   the paper's own published data: the Fig. 3(b) connectivity strengths of
   ibmq_20_tokyo and the Fig. 6(c,d) distance matrices of the hypothetical
   6-qubit machine. *)

module Graph = Qaoa_graph.Graph
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Topologies = Qaoa_hardware.Topologies
module Profile = Qaoa_hardware.Profile
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng

let test_tokyo_shape () =
  let d = Topologies.ibmq_20_tokyo () in
  Alcotest.(check int) "20 qubits" 20 (Device.num_qubits d);
  Alcotest.(check bool) "connected" true (Graph.is_connected d.Device.coupling);
  Alcotest.(check bool) "0-1 coupled" true (Device.coupled d 0 1);
  Alcotest.(check bool) "1-0 symmetric" true (Device.coupled d 1 0);
  Alcotest.(check bool) "0-19 not coupled" false (Device.coupled d 0 19)

(* Fig. 3(b): connectivity strength = first + second neighbors.  The
   paper spells out strength(qubit 0) = 7 (2 first + 5 second) and that
   qubits 7 and 12 share the maximum of 18. *)
let test_tokyo_connectivity_strengths () =
  let d = Topologies.ibmq_20_tokyo () in
  Alcotest.(check int) "qubit 0" 7 (Profile.connectivity_strength d 0);
  Alcotest.(check int) "qubit 7" 18 (Profile.connectivity_strength d 7);
  Alcotest.(check int) "qubit 12" 18 (Profile.connectivity_strength d 12);
  let profile = Profile.connectivity_profile d in
  let maximum = Array.fold_left max 0 profile in
  Alcotest.(check int) "18 is the maximum" 18 maximum;
  let argmaxes =
    List.filter (fun q -> profile.(q) = maximum) (List.init 20 (fun i -> i))
  in
  Alcotest.(check (list int)) "achieved exactly by 7 and 12" [ 7; 12 ] argmaxes

let test_tokyo_first_second_neighbors () =
  (* The paper's example: qubit 0 has first neighbors {1, 5} and second
     neighbors {2, 6, 7, 10, 11}. *)
  let d = Topologies.ibmq_20_tokyo () in
  Alcotest.(check (list int)) "first neighbors of 0" [ 1; 5 ]
    (Graph.neighbors d.Device.coupling 0);
  Alcotest.(check int) "order-1 strength" 2 (Profile.connectivity_strength ~order:1 d 0)

let test_melbourne_shape () =
  let d = Topologies.ibmq_16_melbourne () in
  Alcotest.(check int) "15 qubits" 15 (Device.num_qubits d);
  Alcotest.(check int) "20 couplings" 20 (List.length (Device.coupling_edges d));
  Alcotest.(check bool) "connected" true (Graph.is_connected d.Device.coupling);
  (* ladder: interior qubits have degree 3, the rung ends 2, and qubit 7
     (the dangling corner of the real device) degree 1 *)
  List.iter
    (fun q ->
      let deg = Graph.degree d.Device.coupling q in
      Alcotest.(check bool) "ladder degrees" true (deg >= 1 && deg <= 3))
    (Graph.vertices d.Device.coupling);
  Alcotest.(check int) "corner qubit 7" 1 (Graph.degree d.Device.coupling 7)

let test_melbourne_calibration () =
  let d = Topologies.ibmq_16_melbourne () in
  let cal = Device.calibration_exn d in
  Alcotest.(check (float 1e-9)) "(0,1) rate" 1.87e-2 (Calibration.cnot_error cal 0 1);
  Alcotest.(check (float 1e-9)) "unordered lookup" 1.87e-2
    (Calibration.cnot_error cal 1 0);
  (* every coupling has a rate *)
  List.iter
    (fun (u, v) ->
      match Calibration.cnot_error_opt cal u v with
      | Some e -> Alcotest.(check bool) "plausible rate" true (e > 0.0 && e < 0.2)
      | None -> Alcotest.fail "missing calibration entry")
    (Device.coupling_edges d);
  let (wu, wv), we = Calibration.worst_edge cal in
  Alcotest.(check (float 1e-9)) "worst edge is (3,4)" 8.60e-2 we;
  Alcotest.(check (pair int int)) "worst pair" (3, 4) (wu, wv)

let test_calibration_success_rates () =
  let cal = Calibration.create [ (0, 1, 0.1) ] in
  Alcotest.(check (float 1e-12)) "cnot success" 0.9 (Calibration.cnot_success cal 0 1);
  Alcotest.(check (float 1e-12)) "cphase success" 0.81
    (Calibration.cphase_success cal 0 1);
  Alcotest.check_raises "unknown pair"
    (Failure "Calibration.cnot_error: no rate recorded for coupling (0, 2)")
    (fun () -> ignore (Calibration.cnot_error cal 0 2))

let test_calibration_random () =
  let rng = Rng.create 31 in
  let edges = [ (0, 1); (1, 2); (2, 3) ] in
  let cal = Calibration.random rng edges in
  List.iter
    (fun (u, v) ->
      let e = Calibration.cnot_error cal u v in
      Alcotest.(check bool) "clamped range" true (e >= 1e-4 && e <= 0.5))
    edges;
  Alcotest.(check int) "edge list" 3 (List.length (Calibration.edges cal))

let test_grid_and_friends () =
  let g = Topologies.grid_6x6 () in
  Alcotest.(check int) "36 qubits" 36 (Device.num_qubits g);
  Alcotest.(check int) "60 couplings" 60 (List.length (Device.coupling_edges g));
  let l = Topologies.linear 5 in
  Alcotest.(check int) "linear couplings" 4 (List.length (Device.coupling_edges l));
  let r = Topologies.ring 8 in
  Alcotest.(check int) "ring couplings" 8 (List.length (Device.coupling_edges r))

(* Fig. 6(c): hop distances of the hypothetical 6-qubit machine. *)
let test_hypothetical_hop_distances () =
  let d = Topologies.hypothetical_6q () in
  let m = Profile.hop_distances d in
  let expect =
    [
      (0, 1, 1.); (0, 2, 2.); (0, 3, 3.); (0, 4, 2.); (0, 5, 1.);
      (1, 2, 1.); (1, 3, 2.); (1, 4, 1.); (1, 5, 2.);
      (2, 3, 1.); (2, 4, 2.); (2, 5, 3.);
      (3, 4, 1.); (3, 5, 2.);
      (4, 5, 1.);
    ]
  in
  List.iter
    (fun (u, v, e) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "d(%d,%d)" u v)
        e (Float_matrix.get m u v))
    expect

(* Fig. 6(d): reliability-weighted distances.  The paper's table is
   printed at 2 decimals and appears to sum rounded per-edge weights, so
   compare with a 0.02 tolerance. *)
let test_hypothetical_weighted_distances () =
  let d = Topologies.hypothetical_6q () in
  let m = Profile.weighted_distances d in
  let expect =
    [
      (0, 1, 1.11); (0, 2, 2.29); (0, 3, 3.41); (0, 4, 2.34); (0, 5, 1.22);
      (1, 2, 1.18); (1, 3, 2.30); (1, 4, 1.23); (1, 5, 2.33);
      (2, 3, 1.12); (2, 4, 2.26); (2, 5, 3.45);
      (3, 4, 1.14); (3, 5, 2.33);
      (4, 5, 1.19);
    ]
  in
  List.iter
    (fun (u, v, e) ->
      Alcotest.(check (float 0.02))
        (Printf.sprintf "w(%d,%d)" u v)
        e (Float_matrix.get m u v))
    expect

let test_distance_matrix_switch () =
  let d = Topologies.hypothetical_6q () in
  let hop = Profile.distance_matrix ~variation_aware:false d in
  let weighted = Profile.distance_matrix ~variation_aware:true d in
  Alcotest.(check (float 1e-9)) "hop is 1" 1.0 (Float_matrix.get hop 0 1);
  Alcotest.(check bool) "weighted > hop" true (Float_matrix.get weighted 0 1 > 1.0)

let test_heavy_hex () =
  let d = Topologies.heavy_hex_27 () in
  Alcotest.(check int) "27 qubits" 27 (Device.num_qubits d);
  Alcotest.(check int) "28 couplings" 28 (List.length (Device.coupling_edges d));
  Alcotest.(check bool) "connected" true (Graph.is_connected d.Device.coupling);
  (* heavy-hex: maximum degree 3 *)
  List.iter
    (fun q ->
      Alcotest.(check bool) "degree <= 3" true
        (Graph.degree d.Device.coupling q <= 3))
    (Graph.vertices d.Device.coupling);
  (* sparser than tokyo: lower peak connectivity strength *)
  let peak dev =
    Array.fold_left max 0 (Profile.connectivity_profile dev)
  in
  Alcotest.(check bool) "sparser than tokyo" true
    (peak d < peak (Topologies.ibmq_20_tokyo ()))

let test_by_name () =
  let check name expected_qubits =
    match Topologies.by_name name with
    | Some d -> Alcotest.(check int) name expected_qubits (Device.num_qubits d)
    | None -> Alcotest.fail ("lookup failed: " ^ name)
  in
  check "tokyo" 20;
  check "melbourne" 15;
  check "grid6x6" 36;
  check "heavyhex27" 27;
  check "linear7" 7;
  check "ring8" 8;
  check "hypothetical6q" 6;
  Alcotest.(check bool) "unknown" true (Topologies.by_name "nope" = None);
  Alcotest.(check bool) "ring2 invalid" true (Topologies.by_name "ring2" = None)

let test_with_random_calibration () =
  let rng = Rng.create 7 in
  let d = Topologies.ibmq_20_tokyo () in
  Alcotest.check_raises "no calibration"
    (Invalid_argument "ibmq_20_tokyo: device has no calibration data")
    (fun () -> ignore (Device.calibration_exn d));
  let d2 = Device.with_random_calibration rng d in
  let cal = Device.calibration_exn d2 in
  Alcotest.(check int) "all couplings calibrated"
    (List.length (Device.coupling_edges d))
    (List.length (Calibration.edges cal))

let suite =
  [
    ("tokyo shape", `Quick, test_tokyo_shape);
    ("tokyo connectivity strengths (Fig 3b)", `Quick, test_tokyo_connectivity_strengths);
    ("tokyo neighbors example", `Quick, test_tokyo_first_second_neighbors);
    ("melbourne shape", `Quick, test_melbourne_shape);
    ("melbourne calibration (Fig 10a)", `Quick, test_melbourne_calibration);
    ("calibration success rates", `Quick, test_calibration_success_rates);
    ("random calibration", `Quick, test_calibration_random);
    ("grid/linear/ring", `Quick, test_grid_and_friends);
    ("heavy-hex 27", `Quick, test_heavy_hex);
    ("hypothetical 6q hops (Fig 6c)", `Quick, test_hypothetical_hop_distances);
    ("hypothetical 6q weighted (Fig 6d)", `Quick, test_hypothetical_weighted_distances);
    ("distance matrix switch", `Quick, test_distance_matrix_switch);
    ("device lookup by name", `Quick, test_by_name);
    ("random calibration attach", `Quick, test_with_random_calibration);
  ]
