(* Test entry point: one alcotest suite per library. *)

let () =
  Alcotest.run "qaoa_compile"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("obs-domains", Test_obs_domains.suite);
      ("graph", Test_graph.suite);
      ("circuit", Test_circuit.suite);
      ("optimize+dag", Test_optimize.suite);
      ("render+landscape", Test_render.suite);
      ("hardware", Test_hardware.suite);
      ("backend", Test_backend.suite);
      ("sabre", Test_sabre.suite);
      ("sim", Test_sim.suite);
      ("density-matrix", Test_density.suite);
      ("core", Test_core.suite);
      ("strategies", Test_strategies.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("swap-network+mitigation", Test_swap_network.suite);
      ("classical+export", Test_classical.suite);
      ("encodings", Test_encodings.suite);
      ("solver", Test_solver.suite);
      ("families+budget", Test_families.suite);
      ("estimator+orient", Test_estimator.suite);
      ("pipeline-fuzz", Test_pipeline.suite);
      ("verify", Test_verify.suite);
      ("analysis", Test_analysis.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("resilience", Test_resilience.suite);
      ("journal", Test_journal.suite);
      ("serve", Test_serve.suite);
    ]
