(* Multicore correctness of the observability layer: N domains hammer
   counters, histograms and nested spans in parallel; the merged view
   must be exact, and snapshot merge must be order-independent. *)

module Config = Qaoa_obs.Config
module Trace = Qaoa_obs.Trace
module Metrics = Qaoa_obs.Metrics_registry
module Snapshot = Qaoa_obs.Snapshot

let num_domains = 4
let incrs_per_domain = 30_000
let obs_per_domain = 3_000
let spans_per_domain = 200

let with_tracing f () =
  Config.set (Some Config.Report);
  Trace.reset ();
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Config.set None;
      Trace.reset ();
      Metrics.reset ())
    f

(* Every domain runs the same deterministic workload: a shared counter,
   a per-domain counter, observations of [i mod 100] (integer-valued, so
   float sums are exact), and 3-deep span nests. *)
let workload k =
  for i = 1 to incrs_per_domain do
    Metrics.incr "stress.shared";
    if i mod 10 = 0 then Metrics.incr (Printf.sprintf "stress.worker%d" k) ~by:2
  done;
  for i = 0 to obs_per_domain - 1 do
    Metrics.observe "stress.sizes" (float_of_int (i mod 100))
  done;
  for _ = 1 to spans_per_domain do
    Trace.with_span "outer" (fun () ->
        Trace.with_span "mid" (fun () -> Trace.with_span "leaf" (fun () -> ())))
  done

let test_stress () =
  let mid_flight = Atomic.make Snapshot.empty in
  let domains =
    List.init num_domains (fun k ->
        Domain.spawn (fun () ->
            (* one concurrent capture mid-flight: must not crash and must
               be internally consistent (checked below) *)
            if k = 0 then Atomic.set mid_flight (Snapshot.capture ());
            workload k))
  in
  List.iter Domain.join domains;
  (* main domain contributes too, so [num_domains + 1] shards recorded *)
  workload num_domains;
  let snap = Snapshot.capture () in
  (* exact merged counters *)
  Alcotest.(check int) "shared counter exact"
    ((num_domains + 1) * incrs_per_domain)
    (Snapshot.counter snap "stress.shared");
  for k = 0 to num_domains do
    Alcotest.(check int)
      (Printf.sprintf "worker%d counter exact" k)
      (2 * (incrs_per_domain / 10))
      (Snapshot.counter snap (Printf.sprintf "stress.worker%d" k))
  done;
  (* exact merged histogram state *)
  (match Snapshot.summary snap "stress.sizes" with
  | None -> Alcotest.fail "stress.sizes histogram missing"
  | Some s ->
    Alcotest.(check int) "observation count exact"
      ((num_domains + 1) * obs_per_domain)
      s.Metrics.count;
    let sum_one =
      (* sum of (i mod 100) for i in 0 .. obs_per_domain-1 *)
      let full = obs_per_domain / 100 and rem = obs_per_domain mod 100 in
      (full * 4950) + (rem * (rem - 1) / 2)
    in
    Alcotest.(check (float 1e-6)) "observation sum exact"
      (float_of_int ((num_domains + 1) * sum_one))
      s.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 0.0 s.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 99.0 s.Metrics.max);
  (* every shard registered *)
  Alcotest.(check bool)
    (Printf.sprintf "at least %d shards" (num_domains + 1))
    true
    (Metrics.shard_count () >= num_domains + 1);
  Alcotest.(check bool)
    (Printf.sprintf "at least %d tracing domains" (num_domains + 1))
    true
    (Trace.domains_seen () >= num_domains + 1);
  (* span stream: right count, and parentage/depth valid within each
     domain (a parent must exist, be on the same domain, one level up) *)
  let spans = snap.Snapshot.spans in
  Alcotest.(check int) "span count exact"
    ((num_domains + 1) * spans_per_domain * 3)
    (List.length spans);
  Alcotest.(check int) "no spans dropped" 0 snap.Snapshot.dropped_spans;
  let by_id = Hashtbl.create (List.length spans) in
  List.iter (fun ev -> Hashtbl.replace by_id ev.Trace.id ev) spans;
  List.iter
    (fun ev ->
      if ev.Trace.parent = -1 then begin
        Alcotest.(check int) "root depth" 0 ev.Trace.depth;
        Alcotest.(check string) "root name" "outer" ev.Trace.name
      end
      else
        match Hashtbl.find_opt by_id ev.Trace.parent with
        | None -> Alcotest.failf "span %d has unknown parent" ev.Trace.id
        | Some parent ->
          Alcotest.(check int) "parent on same domain" ev.Trace.domain
            parent.Trace.domain;
          Alcotest.(check int) "depth is parent + 1" (parent.Trace.depth + 1)
            ev.Trace.depth;
          Alcotest.(check string)
            (ev.Trace.name ^ " nests correctly")
            (match ev.Trace.name with
            | "leaf" -> "mid"
            | "mid" -> "outer"
            | other -> "child of root? " ^ other)
            parent.Trace.name)
    spans;
  (* the mid-flight snapshot never exceeds the final totals *)
  let mid = Atomic.get mid_flight in
  Alcotest.(check bool) "mid-flight counter monotone" true
    (Snapshot.counter mid "stress.shared"
    <= Snapshot.counter snap "stress.shared");
  Alcotest.(check bool) "mid-flight spans monotone" true
    (List.length mid.Snapshot.spans <= List.length spans)

(* Property: folding [Snapshot.merge] over any permutation of disjoint
   snapshots yields the same snapshot. Observations are integer-valued
   so float sums are exact and equality is structural. *)
let merge_order_independent =
  let gen =
    QCheck.Gen.(
      list_size (int_range 2 5)
        (pair (list_size (int_range 0 6) (pair (int_range 0 3) (int_range 0 50)))
           (list_size (int_range 0 40) (int_range 0 99))))
  in
  let arb = QCheck.make gen in
  let snapshot_of_part part (counter_incrs, observations) =
    Config.set (Some Config.Report);
    Trace.reset ();
    Metrics.reset ();
    List.iter
      (fun (c, by) -> Metrics.incr (Printf.sprintf "c%d" c) ~by)
      counter_incrs;
    List.iter
      (fun v ->
        Metrics.observe
          (Printf.sprintf "h%d" (v mod 2))
          (float_of_int v))
      observations;
    Trace.with_span (Printf.sprintf "part%d" part) (fun () -> ());
    let s = Snapshot.capture () in
    Config.set None;
    Trace.reset ();
    Metrics.reset ();
    s
  in
  QCheck.Test.make ~name:"snapshot merge is order-independent" ~count:50 arb
    (fun parts ->
      let snaps = List.mapi snapshot_of_part parts in
      let fold l = List.fold_left Snapshot.merge Snapshot.empty l in
      let forward = fold snaps and backward = fold (List.rev snaps) in
      let rotated =
        fold (match snaps with [] -> [] | x :: rest -> rest @ [ x ])
      in
      Snapshot.equal forward backward && Snapshot.equal forward rotated)

let suite =
  [
    Alcotest.test_case "4-domain stress: exact merged telemetry" `Quick
      (with_tracing test_stress);
    QCheck_alcotest.to_alcotest merge_order_independent;
  ]
