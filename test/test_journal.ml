(* Tests for the durability layer: CRC-32, atomic writes, the JSONL
   trial journal (including torn-record recovery at every possible
   truncation point), the trial supervisor, chaos-injected crash/tear
   resume equivalence, and the CSV escaping round-trip. *)

module Crc32 = Qaoa_journal.Crc32
module Atomic_write = Qaoa_journal.Atomic_write
module Journal = Qaoa_journal.Journal
module Supervisor = Qaoa_journal.Supervisor
module Chaos = Qaoa_journal.Chaos
module Json = Qaoa_obs.Json
module Export = Qaoa_experiments.Export

let temp_dir () =
  let path = Filename.temp_file "qaoa_journal" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- CRC-32 --- *)

let test_crc32_vectors () =
  (* the standard IEEE 802.3 check value *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (Crc32.digest "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest "");
  Alcotest.(check bool) "sensitive to change" true
    (Crc32.digest "hello" <> Crc32.digest "hellp")

let test_crc32_hex_roundtrip () =
  List.iter
    (fun s ->
      let c = Crc32.digest s in
      Alcotest.(check (option int32))
        ("hex roundtrip of " ^ s)
        (Some c)
        (Crc32.of_hex (Crc32.to_hex c)))
    [ ""; "a"; "123456789"; "{\"key\":\"x\"}" ];
  Alcotest.(check (option int32)) "bad length" None (Crc32.of_hex "abc");
  Alcotest.(check (option int32)) "bad chars" None (Crc32.of_hex "xyzwxyzw")

(* --- atomic writes --- *)

let test_atomic_write () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "out.txt" in
  Atomic_write.write_string ~path "first\n";
  Alcotest.(check string) "written" "first\n" (read_file path);
  Atomic_write.write_string ~path "second\n";
  Alcotest.(check string) "replaced" "second\n" (read_file path);
  (* no temp files survive a successful write *)
  let leftovers =
    List.filter
      (fun f -> f <> "out.txt")
      (Array.to_list (Sys.readdir dir))
  in
  Alcotest.(check (list string)) "no temp leftovers" [] leftovers

let test_mkdir_p () =
  with_dir @@ fun dir ->
  let deep = Filename.concat (Filename.concat dir "a") "b" in
  Atomic_write.mkdir_p deep;
  Alcotest.(check bool) "created recursively" true (Sys.is_directory deep);
  (* idempotent *)
  Atomic_write.mkdir_p deep;
  (* refuses to shadow a file *)
  let file = Filename.concat dir "plain" in
  Atomic_write.write_string ~path:file "x";
  Alcotest.(check bool) "file blocks mkdir_p" true
    (try
       Atomic_write.mkdir_p file;
       false
     with Sys_error _ -> true)

(* --- journal basics --- *)

let payload i = Json.Assoc [ ("v", Json.Float (float_of_int i)) ]

let test_journal_roundtrip () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  Journal.append j ~key:"a" ~status:Journal.Done (payload 1);
  Journal.append j ~key:"b" ~status:Journal.Quarantined (payload 2);
  Journal.close j;
  let j2 = Journal.open_ ~resume:true ~dir () in
  Alcotest.(check int) "entries" 2 (Journal.entries j2);
  (match Journal.find j2 "a" with
  | Some { Journal.status = Journal.Done; payload = p } ->
    Alcotest.(check (option (float 0.0)))
      "payload survives" (Some 1.0)
      (Option.bind (Json.member "v" p) Json.to_float)
  | _ -> Alcotest.fail "expected Done entry for a");
  (match Journal.find j2 "b" with
  | Some { Journal.status = Journal.Quarantined; _ } -> ()
  | _ -> Alcotest.fail "expected Quarantined entry for b");
  let s = Journal.stats j2 in
  Alcotest.(check int) "loaded" 2 s.Journal.loaded;
  Alcotest.(check int) "hits" 2 s.Journal.hits;
  Alcotest.(check int) "quarantined" 1 s.Journal.quarantined;
  Alcotest.(check int) "nothing torn" 0 s.Journal.torn_truncated;
  Journal.close j2

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_journal_refuses_without_resume () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  Journal.append j ~key:"a" ~status:Journal.Done (payload 1);
  Journal.close j;
  Alcotest.(check bool) "refused" true
    (try
       ignore (Journal.open_ ~dir ());
       false
     with Failure msg ->
       Alcotest.(check bool) "message mentions --resume" true
         (contains_substring msg "--resume");
       true)

let test_journal_duplicate_key () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  Journal.append j ~key:"a" ~status:Journal.Done (payload 1);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Journal.append j ~key:"a" ~status:Journal.Done (payload 2);
       false
     with Invalid_argument _ -> true);
  Journal.close j

let test_journal_closed_append () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  Journal.close j;
  Alcotest.(check bool) "append after close rejected" true
    (try
       Journal.append j ~key:"a" ~status:Journal.Done (payload 1);
       false
     with Invalid_argument _ -> true)

(* --- torn-record recovery at every truncation point --- *)

let test_torn_recovery_every_cut () =
  (* Build a clean 3-record journal, then replay every possible prefix
     of the file as a crash image: exactly the records whose bytes fully
     survived (including the newline) must load, the rest must be
     truncated away as one torn trailing record, and resume must
     succeed at every single cut. *)
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  Journal.append j ~key:"k0" ~status:Journal.Done (payload 0);
  Journal.append j ~key:"k1" ~status:Journal.Done (payload 1);
  Journal.append j ~key:"k2" ~status:Journal.Quarantined (payload 2);
  Journal.close j;
  let file = Filename.concat dir Journal.default_filename in
  let content = read_file file in
  let len = String.length content in
  (* offsets one past each record's newline *)
  let boundaries =
    String.to_seqi content
    |> Seq.filter_map (fun (i, c) -> if c = '\n' then Some (i + 1) else None)
    |> List.of_seq
  in
  Alcotest.(check int) "three records" 3 (List.length boundaries);
  for cut = 0 to len do
    with_dir @@ fun dir2 ->
    Atomic_write.mkdir_p dir2;
    let file2 = Filename.concat dir2 Journal.default_filename in
    Atomic_write.write_string ~path:file2 (String.sub content 0 cut);
    let j2 = Journal.open_ ~resume:true ~dir:dir2 () in
    let expect = List.length (List.filter (fun b -> b <= cut) boundaries) in
    let s = Journal.stats j2 in
    Alcotest.(check int)
      (Printf.sprintf "records surviving cut at byte %d" cut)
      expect s.Journal.loaded;
    let at_boundary = cut = 0 || List.mem cut boundaries in
    Alcotest.(check int)
      (Printf.sprintf "torn truncations at byte %d" cut)
      (if at_boundary then 0 else 1)
      s.Journal.torn_truncated;
    (* the file itself was physically truncated back to the boundary *)
    Alcotest.(check int)
      (Printf.sprintf "file truncated at byte %d" cut)
      (List.fold_left (fun acc b -> if b <= cut then b else acc) 0 boundaries)
      (String.length (read_file file2));
    (* and the journal keeps working: append again under a fresh key *)
    Journal.append j2 ~key:"fresh" ~status:Journal.Done (payload 9);
    Journal.close j2
  done

let test_midfile_corruption_refused () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  Journal.append j ~key:"k0" ~status:Journal.Done (payload 0);
  Journal.append j ~key:"k1" ~status:Journal.Done (payload 1);
  Journal.close j;
  let file = Filename.concat dir Journal.default_filename in
  let content = Bytes.of_string (read_file file) in
  (* flip a byte inside the first record's JSON *)
  Bytes.set content 12 (if Bytes.get content 12 = 'x' then 'y' else 'x');
  Atomic_write.write_string ~path:file (Bytes.to_string content);
  Alcotest.(check bool) "mid-file corruption raises" true
    (try
       ignore (Journal.open_ ~resume:true ~dir ());
       false
     with Failure _ -> true)

(* --- supervisor --- *)

let float_enc v = Json.Float v

let float_dec doc =
  Option.value ~default:Float.nan (Json.to_float doc)

let test_supervisor_cache_skip () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  let runs = ref 0 in
  let thunk ~attempt:_ ~deadline:_ =
    incr runs;
    42.0
  in
  (match
     Supervisor.trial ~journal:j ~key:"t" ~encode:float_enc ~decode:float_dec
       thunk
   with
  | Supervisor.Completed v -> Alcotest.(check (float 0.0)) "value" 42.0 v
  | Supervisor.Quarantined _ -> Alcotest.fail "unexpected quarantine");
  (match
     Supervisor.trial ~journal:j ~key:"t" ~encode:float_enc ~decode:float_dec
       thunk
   with
  | Supervisor.Completed v -> Alcotest.(check (float 0.0)) "cached value" 42.0 v
  | Supervisor.Quarantined _ -> Alcotest.fail "unexpected quarantine");
  Alcotest.(check int) "thunk ran once" 1 !runs;
  Journal.close j

let test_supervisor_retry_reseed () =
  let attempts = ref [] in
  let thunk ~attempt ~deadline:_ =
    attempts := attempt :: !attempts;
    if attempt < 2 then failwith "flaky" else float_of_int attempt
  in
  (match
     Supervisor.trial ~tries:3 ~key:"t" ~encode:float_enc ~decode:float_dec
       thunk
   with
  | Supervisor.Completed v ->
    Alcotest.(check (float 0.0)) "succeeded on attempt 2" 2.0 v
  | Supervisor.Quarantined _ -> Alcotest.fail "unexpected quarantine");
  Alcotest.(check (list int)) "attempt sequence" [ 0; 1; 2 ]
    (List.rev !attempts)

let test_supervisor_quarantine_and_resume () =
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  let runs = ref 0 in
  let thunk ~attempt:_ ~deadline:_ =
    incr runs;
    failwith "always broken"
  in
  (match
     Supervisor.trial ~journal:j ~tries:2 ~key:"bad" ~encode:float_enc
       ~decode:float_dec thunk
   with
  | Supervisor.Quarantined f ->
    Alcotest.(check string) "key recorded" "bad" f.Supervisor.f_key;
    Alcotest.(check int) "attempts recorded" 2 f.Supervisor.f_attempts;
    Alcotest.(check int) "one error per attempt" 2
      (List.length f.Supervisor.f_errors)
  | Supervisor.Completed _ -> Alcotest.fail "expected quarantine");
  Alcotest.(check int) "two attempts ran" 2 !runs;
  Journal.close j;
  (* a resumed run honours the quarantine without re-running the failure *)
  let j2 = Journal.open_ ~resume:true ~dir () in
  (match
     Supervisor.trial ~journal:j2 ~tries:2 ~key:"bad" ~encode:float_enc
       ~decode:float_dec thunk
   with
  | Supervisor.Quarantined f ->
    Alcotest.(check int) "cached attempts" 2 f.Supervisor.f_attempts
  | Supervisor.Completed _ -> Alcotest.fail "expected cached quarantine");
  Alcotest.(check int) "failure not re-run" 2 !runs;
  Journal.close j2

(* --- chaos: interrupted-then-resumed == uninterrupted --- *)

(* Run [n] supervised trials against a journal in [dir]; trial [i]
   computes a deterministic float.  Returns (results, executions). *)
let run_sweep ~dir ~resume n =
  let executed = ref 0 in
  let j = Journal.open_ ~resume ~dir () in
  Fun.protect
    ~finally:(fun () -> Journal.close j)
    (fun () ->
      let results =
        List.init n (fun i ->
            match
              Supervisor.trial ~journal:j
                ~key:(Printf.sprintf "sweep/i%d" i)
                ~encode:float_enc ~decode:float_dec
                (fun ~attempt:_ ~deadline:_ ->
                  incr executed;
                  (* deliberately awkward float to exercise the codec *)
                  Float.of_int i /. 3.0)
            with
            | Supervisor.Completed v -> v
            | Supervisor.Quarantined _ -> Float.nan)
      in
      (results, !executed))

let test_chaos_crash_resume_identical () =
  let n = 7 in
  let uninterrupted = with_dir (fun dir -> fst (run_sweep ~dir ~resume:false n)) in
  with_dir @@ fun dir ->
  Chaos.set_plan
    (Some { Chaos.action = Chaos.Crash_after 3; mode = Chaos.Raise });
  let crashed =
    try
      ignore (run_sweep ~dir ~resume:false n);
      false
    with Chaos.Injected _ -> true
  in
  Chaos.set_plan None;
  Alcotest.(check bool) "chaos fired" true crashed;
  let resumed, executed = run_sweep ~dir ~resume:true n in
  Alcotest.(check (list (float 0.0)))
    "resumed sweep bit-identical" uninterrupted resumed;
  Alcotest.(check int) "only the missing trials re-ran" (n - 3) executed

let test_chaos_tear_resume_identical () =
  let n = 6 in
  let uninterrupted = with_dir (fun dir -> fst (run_sweep ~dir ~resume:false n)) in
  with_dir @@ fun dir ->
  Chaos.set_plan
    (Some { Chaos.action = Chaos.Tear_after 4; mode = Chaos.Raise });
  (try ignore (run_sweep ~dir ~resume:false n)
   with Chaos.Injected _ -> ());
  Chaos.set_plan None;
  let resumed, executed = run_sweep ~dir ~resume:true n in
  Alcotest.(check (list (float 0.0)))
    "resumed sweep bit-identical after tear" uninterrupted resumed;
  (* the 4th record was torn: 3 survive, 3 re-run *)
  Alcotest.(check int) "torn trial re-ran" (n - 3) executed

let test_chaos_plan_parsing () =
  (match Chaos.plan_of_string "crash-after=4" with
  | Ok { Chaos.action = Chaos.Crash_after 4; mode = Chaos.Exit } -> ()
  | _ -> Alcotest.fail "crash-after=4 misparsed");
  (match Chaos.plan_of_string "tear-after=2" with
  | Ok { Chaos.action = Chaos.Tear_after 2; mode = Chaos.Exit } -> ()
  | _ -> Alcotest.fail "tear-after=2 misparsed");
  (match Chaos.plan_of_string "explode=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense accepted")

(* --- journaled Runner agrees with the direct path --- *)

let test_runner_journaled_matches_direct () =
  let module Runner = Qaoa_experiments.Runner in
  let module Workload = Qaoa_experiments.Workload in
  let module Compile = Qaoa_core.Compile in
  let device = Qaoa_hardware.Topologies.ibmq_16_melbourne () in
  let problems =
    Workload.problems (Qaoa_util.Rng.create 7) (Workload.Regular 3) ~n:8
      ~count:3
  in
  let strategies = [ Compile.Naive; Compile.Ic None ] in
  let params = Workload.default_params in
  let direct = Runner.run ~device ~strategies ~params problems in
  with_dir @@ fun dir ->
  let j = Journal.open_ ~dir () in
  let journaled =
    Runner.run ~journal:j ~experiment:"t" ~device ~strategies ~params problems
  in
  Journal.close j;
  (* replay from the journal only *)
  let j2 = Journal.open_ ~resume:true ~dir () in
  let replayed =
    Runner.run ~journal:j2 ~experiment:"t" ~device ~strategies ~params
      problems
  in
  let s = Journal.stats j2 in
  Alcotest.(check int) "replay executed nothing" 0 s.Journal.appended;
  Journal.close j2;
  List.iter2
    (fun (a : Runner.aggregate) (b : Runner.aggregate) ->
      Alcotest.(check (float 0.0)) "depth" a.Runner.mean_depth b.Runner.mean_depth;
      Alcotest.(check (float 0.0)) "gates" a.Runner.mean_gates b.Runner.mean_gates;
      Alcotest.(check (float 0.0)) "swaps" a.Runner.mean_swaps b.Runner.mean_swaps;
      Alcotest.(check int) "instances" a.Runner.instances b.Runner.instances;
      Alcotest.(check int) "quarantined" 0 b.Runner.quarantined)
    direct journaled;
  List.iter2
    (fun (a : Runner.aggregate) (b : Runner.aggregate) ->
      Alcotest.(check (float 0.0)) "replay depth" a.Runner.mean_depth
        b.Runner.mean_depth;
      Alcotest.(check (float 0.0)) "replay time" a.Runner.mean_time
        b.Runner.mean_time)
    journaled replayed

(* --- CSV escaping round-trip --- *)

(* Minimal RFC-4180 reader for the exporter's output: rows of fields,
   double quotes doubling inside quoted fields. *)
let parse_csv s =
  let rows = ref [] and fields = ref [] and buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let len = String.length s in
  let rec plain i =
    if i >= len then (if !fields <> [] || Buffer.length buf > 0 then flush_row ())
    else
      match s.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '\n' ->
        flush_row ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= len then failwith "unterminated quoted field"
    else
      match s.[i] with
      | '"' when i + 1 < len && s.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let label_gen =
  (* labels drawn from an alphabet rich in CSV metacharacters *)
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; ' '; '-' ]) (0 -- 12))

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"CSV escaping round-trips through an RFC-4180 reader"
    ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (1 -- 5) label_gen))
    (fun labels ->
      let rows = List.map (fun l -> (l, [ 1.0; 2.5 ])) labels in
      let csv = Export.csv_of_rows ~columns:[ "x"; "y" ] rows in
      match parse_csv csv with
      | header :: data ->
        header = [ "workload"; "x"; "y" ]
        && List.length data = List.length labels
        && List.for_all2
             (fun label row -> match row with l :: _ -> l = label | [] -> false)
             labels data
      | [] -> false)

let test_export_all_recursive_dir () =
  with_dir @@ fun dir ->
  let deep = Filename.concat (Filename.concat dir "nested") "csv" in
  let paths =
    Export.export_all ~dir:deep [ ("t", [ "a" ], [ ("row", [ 1.0 ]) ]) ]
  in
  Alcotest.(check int) "one file" 1 (List.length paths);
  Alcotest.(check bool) "file exists under nested dir" true
    (Sys.file_exists (Filename.concat deep "t.csv"))

let suite =
  [
    ("crc32 vectors", `Quick, test_crc32_vectors);
    ("crc32 hex roundtrip", `Quick, test_crc32_hex_roundtrip);
    ("atomic write", `Quick, test_atomic_write);
    ("mkdir_p", `Quick, test_mkdir_p);
    ("journal roundtrip", `Quick, test_journal_roundtrip);
    ("journal refuses without resume", `Quick,
     test_journal_refuses_without_resume);
    ("journal duplicate key", `Quick, test_journal_duplicate_key);
    ("journal closed append", `Quick, test_journal_closed_append);
    ("torn recovery at every cut", `Quick, test_torn_recovery_every_cut);
    ("mid-file corruption refused", `Quick, test_midfile_corruption_refused);
    ("supervisor cache skip", `Quick, test_supervisor_cache_skip);
    ("supervisor retry reseed", `Quick, test_supervisor_retry_reseed);
    ("supervisor quarantine and resume", `Quick,
     test_supervisor_quarantine_and_resume);
    ("chaos crash resume identical", `Quick,
     test_chaos_crash_resume_identical);
    ("chaos tear resume identical", `Quick, test_chaos_tear_resume_identical);
    ("chaos plan parsing", `Quick, test_chaos_plan_parsing);
    ("journaled runner matches direct", `Quick,
     test_runner_journaled_matches_direct);
    ("export_all creates dirs", `Quick, test_export_all_recursive_dir);
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
  ]
