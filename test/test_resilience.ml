(* Fault injection, graceful degradation, and deadline tests: the
   qaoa_resilience library plus Compile's error taxonomy and fallback
   chain. *)

module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Device = Qaoa_hardware.Device
module Calibration = Qaoa_hardware.Calibration
module Topologies = Qaoa_hardware.Topologies
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router
module Fault = Qaoa_resilience.Fault
module Faultspace = Qaoa_resilience.Faultspace
module Repair = Qaoa_resilience.Repair
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Check = Qaoa_verify.Check
module Workload = Qaoa_experiments.Workload
module Rng = Qaoa_util.Rng

let params = Workload.default_params

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let calibrated_tokyo seed =
  Device.with_random_calibration (Rng.create seed) (Topologies.ibmq_20_tokyo ())

let cal_entries device =
  match device.Device.calibration with
  | Some cal -> Calibration.entries cal
  | None -> []

let check_validate device = Alcotest.(check (result unit (list string)))
  "device validates" (Ok ()) (Device.validate device)

(* --- fault injection --- *)

let test_fault_determinism () =
  let base = calibrated_tokyo 5 in
  let faults =
    [
      Fault.Random_dead_qubits 2;
      Fault.Random_severed_couplings 3;
      Fault.Calibration_drift { sigma = 0.3 };
      Fault.Dropped_calibration { fraction = 0.2 };
    ]
  in
  let a = Fault.apply_all ~seed:11 faults base in
  let b = Fault.apply_all ~seed:11 faults base in
  Alcotest.(check bool)
    "same seed, same coupling" true
    (Graph.equal a.Device.coupling b.Device.coupling);
  Alcotest.(check (list (triple int int (float 0.0))))
    "same seed, same calibration" (cal_entries a) (cal_entries b);
  let c = Fault.apply_all ~seed:12 faults base in
  Alcotest.(check bool)
    "different seed perturbs differently" false
    (Graph.equal a.Device.coupling c.Device.coupling
    && cal_entries a = cal_entries c)

let test_dead_qubit () =
  let base = Topologies.ibmq_16_melbourne () in
  let dead = 3 in
  let faulty = Fault.apply ~seed:1 (Fault.Dead_qubit dead) base in
  Alcotest.(check int)
    "register size unchanged" (Device.num_qubits base)
    (Device.num_qubits faulty);
  Alcotest.(check int)
    "no incident couplings" 0
    (Graph.degree faulty.Device.coupling dead);
  Alcotest.(check bool)
    "no calibration entry touches the dead qubit" true
    (List.for_all
       (fun (u, v, _) -> u <> dead && v <> dead)
       (cal_entries faulty));
  check_validate faulty

let test_severed_coupling () =
  let base = Topologies.ibmq_16_melbourne () in
  let u, v = List.hd (Device.coupling_edges base) in
  let faulty = Fault.apply ~seed:1 (Fault.Severed_coupling (u, v)) base in
  Alcotest.(check bool)
    "edge gone" false
    (Graph.has_edge faulty.Device.coupling u v);
  Alcotest.(check bool)
    "calibration entry gone" true
    (Calibration.cnot_error_opt
       (Device.calibration_exn faulty)
       u v
    = None);
  Alcotest.(check int)
    "exactly one edge removed"
    (Graph.num_edges base.Device.coupling - 1)
    (Graph.num_edges faulty.Device.coupling);
  check_validate faulty;
  Alcotest.check_raises "nonexistent coupling rejected"
    (Invalid_argument
       (Printf.sprintf "Fault: coupling (0, 13) does not exist on %s"
          base.Device.name))
    (fun () -> ignore (Fault.apply ~seed:1 (Fault.Severed_coupling (0, 13)) base))

let test_calibration_drift () =
  let base = Topologies.ibmq_16_melbourne () in
  let faulty =
    Fault.apply ~seed:4 (Fault.Calibration_drift { sigma = 0.5 }) base
  in
  let before = cal_entries base and after = cal_entries faulty in
  Alcotest.(check int)
    "entry count preserved" (List.length before) (List.length after);
  Alcotest.(check bool)
    "all rates within the clamp" true
    (List.for_all (fun (_, _, e) -> e >= 1e-4 && e <= 0.5) after);
  Alcotest.(check bool)
    "rates actually moved" true
    (List.exists2
       (fun (_, _, e0) (_, _, e1) -> Float.abs (e0 -. e1) > 1e-9)
       before after);
  check_validate faulty

let test_dropped_calibration () =
  let base = calibrated_tokyo 5 in
  let n = List.length (cal_entries base) in
  let faulty =
    Fault.apply ~seed:7 (Fault.Dropped_calibration { fraction = 0.2 }) base
  in
  let expected_drop = max 1 (int_of_float (Float.round (0.2 *. float_of_int n))) in
  Alcotest.(check int)
    "20% of entries dropped" (n - expected_drop)
    (List.length (cal_entries faulty));
  Alcotest.(check int)
    "missing couplings found" expected_drop
    (List.length (Repair.missing_couplings faulty));
  check_validate faulty;
  let repaired = Repair.complete_calibration faulty in
  Alcotest.(check (list (pair int int)))
    "repair completes the snapshot" []
    (Repair.missing_couplings repaired);
  let worst =
    List.fold_left (fun acc (_, _, e) -> Float.max acc e) 0.0
      (cal_entries faulty)
  in
  let filled_rates =
    List.filter_map
      (fun (u, v) ->
        Calibration.cnot_error_opt (Device.calibration_exn repaired) u v)
      (Repair.missing_couplings faulty)
  in
  Alcotest.(check bool)
    "filled pessimistically with the worst recorded rate" true
    (filled_rates <> [] && List.for_all (fun e -> e = worst) filled_rates)

let test_calibration_create_rejects_duplicates () =
  Alcotest.check_raises "duplicate coupling"
    (Invalid_argument "Calibration.create: duplicate coupling (0, 1)")
    (fun () -> ignore (Calibration.create [ (0, 1, 0.1); (1, 0, 0.2) ]));
  Alcotest.check_raises "self-coupling"
    (Invalid_argument "Calibration.create: self-coupling (2, 2)")
    (fun () -> ignore (Calibration.create [ (2, 2, 0.1) ]))

let test_device_validate_rejects_offgraph_calibration () =
  let coupling = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  let cal = Calibration.create [ (0, 2, 0.1) ] in
  let device = Device.create ~calibration:cal ~name:"bogus" coupling in
  match Device.validate device with
  | Ok () -> Alcotest.fail "off-graph calibration entry must not validate"
  | Error issues -> Alcotest.(check bool) "names issues" true (issues <> [])

(* --- graceful degradation --- *)

let fig10_workloads =
  List.concat_map
    (fun kind -> List.map (fun n -> (kind, n)) [ 13; 14; 15 ])
    [ Workload.Erdos_renyi 0.5; Workload.Regular 6 ]

let test_acceptance_degraded_device_compiles () =
  (* The ISSUE's acceptance scenario: a calibrated 20-qubit register with
     two dead qubits and 20% of the calibration entries missing must
     still compile every Fig. 10 workload shape through the fallback
     chain, with a hardware-compliant, validated circuit. *)
  let device =
    Fault.apply_all ~seed:23
      [ Fault.Random_dead_qubits 2; Fault.Dropped_calibration { fraction = 0.2 } ]
      (calibrated_tokyo 5)
  in
  check_validate device;
  let options = { Compile.default_options with seed = 99 } in
  List.iter
    (fun (kind, n) ->
      let name = Printf.sprintf "%s n=%d" (Workload.kind_name kind) n in
      let problem =
        List.hd (Workload.problems (Rng.create (1000 + n)) kind ~n ~count:1)
      in
      match Compile.compile_with_fallback ~options device problem params with
      | Error trail ->
        Alcotest.failf "%s exhausted the chain after %d attempts" name
          (List.length trail)
      | Ok fb ->
        let r = fb.Compile.fallback_result in
        let trail = fb.Compile.attempts in
        Alcotest.(check bool) (name ^ " records attempts") true (trail <> []);
        let last = List.nth trail (List.length trail - 1) in
        Alcotest.(check bool)
          (name ^ " last attempt is the winner") true
          (last.Compile.attempt_error = None
          && last.Compile.attempt_strategy = r.Compile.strategy);
        let logical = Ansatz.circuit ~measure:true problem params in
        let report =
          Check.validate ~device ~initial:r.Compile.initial_mapping
            ~final:r.Compile.final_mapping ~swap_count:r.Compile.swap_count
            ~logical r.Compile.circuit
        in
        if not (Check.ok report) then
          Alcotest.failf "%s failed validation: %s" name
            (Check.report_to_string report))
    fig10_workloads

let test_fallback_deterministic () =
  (* Uncalibrated tokyo: VIC fails structurally (missing calibration),
     the chain falls through to IC - twice, identically. *)
  let device = Topologies.ibmq_20_tokyo () in
  let problem =
    List.hd
      (Workload.problems (Rng.create 3) (Workload.Erdos_renyi 0.5) ~n:14
         ~count:1)
  in
  let run () = Compile.compile_with_fallback device problem params in
  match (run (), run ()) with
  | Ok a, Ok b ->
    let digest fb =
      List.map
        (fun at ->
          ( Compile.strategy_name at.Compile.attempt_strategy,
            at.Compile.attempt_seed,
            Option.map Compile.error_kind at.Compile.attempt_error ))
        fb.Compile.attempts
    in
    Alcotest.(check (list (triple string int (option string))))
      "identical attempt trails" (digest a) (digest b);
    (match a.Compile.attempts with
    | first :: _ ->
      Alcotest.(check (option string))
        "VIC rejected for missing calibration" (Some "missing_calibration")
        (Option.map Compile.error_kind first.Compile.attempt_error)
    | [] -> Alcotest.fail "no attempts recorded");
    Alcotest.(check string)
      "IC wins" "IC"
      (Compile.strategy_name a.Compile.fallback_result.Compile.strategy)
  | _ -> Alcotest.fail "fallback chain failed on a healthy device"

let test_unroutable_split_device () =
  (* Two disconnected 2-qubit islands cannot host a triangle: every
     strategy must fail with a structured error, never an escape. *)
  let device =
    Device.create ~name:"split" (Graph.of_edges 4 [ (0, 1); (2, 3) ])
  in
  let problem = Problem.of_maxcut (Generators.cycle 3) in
  match Compile.compile_with_fallback device problem params with
  | Ok _ -> Alcotest.fail "a triangle cannot route on disconnected islands"
  | Error trail ->
    Alcotest.(check bool) "trail is non-empty" true (trail <> []);
    List.iter
      (fun at ->
        match at.Compile.attempt_error with
        | None -> Alcotest.fail "exhausted trail cannot contain a winner"
        | Some e ->
          let kind = Compile.error_kind e in
          Alcotest.(check bool)
            ("structured failure, got " ^ kind)
            true
            (List.mem kind
               [ "unroutable"; "missing_calibration"; "strategy_failed" ]))
      trail

let test_deadline_aborts () =
  (* An adversarially deep workload on the 36-qubit grid against a tight
     wall-clock budget: the cooperative checks must abort the compile
     within twice the budget. *)
  let device = Topologies.grid_6x6 () in
  let problem =
    List.hd
      (Workload.problems (Rng.create 8) (Workload.Erdos_renyi 0.9) ~n:36
         ~count:1)
  in
  let p = 40 in
  let deep =
    { Ansatz.gammas = Array.make p 0.7; betas = Array.make p 0.4 }
  in
  let budget_s = 0.1 in
  let options =
    { Compile.default_options with deadline_s = Some budget_s }
  in
  let t0 = Qaoa_obs.Clock.wall () in
  let outcome =
    Compile.compile_result ~options ~strategy:(Compile.Ic None) device problem
      deep
  in
  let elapsed = Qaoa_obs.Clock.wall () -. t0 in
  (match outcome with
  | Error (Compile.Deadline_exceeded { budget_s = b; elapsed_s }) ->
    Alcotest.(check (float 1e-9)) "budget echoed" budget_s b;
    Alcotest.(check bool) "elapsed past budget" true (elapsed_s >= budget_s)
  | Error e ->
    Alcotest.failf "expected Deadline_exceeded, got %s"
      (Compile.error_to_string e)
  | Ok _ -> Alcotest.fail "expected the deadline to fire on p=40 grid-36");
  Alcotest.(check bool)
    (Printf.sprintf "aborted within 2x budget (%.3fs)" elapsed)
    true
    (elapsed <= 2.0 *. budget_s)

let test_drifted_calibration_verifies () =
  (* A drifted (but complete) snapshot must not disturb correctness: VIC
     compiles under translation validation. *)
  let device =
    Fault.apply ~seed:6
      (Fault.Calibration_drift { sigma = 0.4 })
      (Topologies.ibmq_16_melbourne ())
  in
  let problem =
    List.hd
      (Workload.problems (Rng.create 9) (Workload.Erdos_renyi 0.5) ~n:12
         ~count:1)
  in
  let options = { Compile.default_options with verify = true } in
  let r =
    Compile.compile ~options ~strategy:(Compile.Vic None) device problem params
  in
  Alcotest.(check bool) "compiled with swaps or not" true (r.Compile.swap_count >= 0)

let test_router_unroutable_exception () =
  let device =
    Device.create ~name:"islands" (Graph.of_edges 4 [ (0, 1); (2, 3) ])
  in
  let circuit =
    Qaoa_circuit.Circuit.of_gates 4 [ Qaoa_circuit.Gate.Cnot (1, 2) ]
  in
  let initial = Mapping.trivial ~num_logical:4 ~num_physical:4 in
  match Router.route ~device ~initial circuit with
  | _ -> Alcotest.fail "routing across components must raise"
  | exception Router.Unroutable msg ->
    Alcotest.(check bool)
      "message names the device" true
      (contains_substring ~needle:"islands" msg)

let test_faultspace_default () =
  Alcotest.(check string)
    "baseline first" "healthy"
    (List.hd Faultspace.default).Faultspace.label;
  Alcotest.(check bool)
    "includes the acceptance scenario" true
    (List.exists
       (fun sc -> sc.Faultspace.label = "dead*2+drop(20%)")
       Faultspace.default);
  let crossed =
    Faultspace.cross
      (Faultspace.dead_qubit_sweep ~counts:[ 1 ] ())
      (Faultspace.drop_sweep ~fractions:[ 0.5 ] ())
  in
  Alcotest.(check int) "cross is a product" 1 (List.length crossed);
  Alcotest.(check int)
    "cross concatenates faults" 2
    (List.length (List.hd crossed).Faultspace.faults)

let suite =
  [
    Alcotest.test_case "fault injection is deterministic" `Quick
      test_fault_determinism;
    Alcotest.test_case "dead qubit strips couplings and calibration" `Quick
      test_dead_qubit;
    Alcotest.test_case "severed coupling" `Quick test_severed_coupling;
    Alcotest.test_case "calibration drift stays clamped" `Quick
      test_calibration_drift;
    Alcotest.test_case "dropped calibration + pessimistic repair" `Quick
      test_dropped_calibration;
    Alcotest.test_case "calibration create rejects bad snapshots" `Quick
      test_calibration_create_rejects_duplicates;
    Alcotest.test_case "device validate rejects off-graph entries" `Quick
      test_device_validate_rejects_offgraph_calibration;
    Alcotest.test_case "acceptance: degraded device compiles via fallback"
      `Quick test_acceptance_degraded_device_compiles;
    Alcotest.test_case "fallback trail is deterministic" `Quick
      test_fallback_deterministic;
    Alcotest.test_case "unroutable split device yields structured trail"
      `Quick test_unroutable_split_device;
    Alcotest.test_case "deadline aborts within twice the budget" `Quick
      test_deadline_aborts;
    Alcotest.test_case "drifted calibration passes verification" `Quick
      test_drifted_calibration_verifies;
    Alcotest.test_case "router raises structured Unroutable" `Quick
      test_router_unroutable_exception;
    Alcotest.test_case "faultspace scenarios" `Quick test_faultspace_default;
  ]
