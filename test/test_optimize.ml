(* Tests for the peephole optimizer and the commutation-aware DAG. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Layering = Qaoa_circuit.Layering
module Decompose = Qaoa_circuit.Decompose
module Optimize = Qaoa_circuit.Optimize
module Dag = Qaoa_circuit.Dag
module Statevector = Qaoa_sim.Statevector
module Rng = Qaoa_util.Rng

(* --- Optimize --- *)

let test_cancel_pairs () =
  let cases =
    [
      ([ Gate.H 0; Gate.H 0 ], 0);
      ([ Gate.X 1; Gate.X 1 ], 0);
      ([ Gate.Cnot (0, 1); Gate.Cnot (0, 1) ], 0);
      ([ Gate.Swap (0, 1); Gate.Swap (1, 0) ], 0);
      (* reversed CNOT orientation must NOT cancel *)
      ([ Gate.Cnot (0, 1); Gate.Cnot (1, 0) ], 2);
      (* an intervening gate on a shared qubit blocks cancellation *)
      ([ Gate.H 0; Gate.Rz (0, 0.5); Gate.H 0 ], 3);
      (* an intervening gate on an unrelated qubit does not *)
      ([ Gate.H 0; Gate.Rz (2, 0.5); Gate.H 0 ], 1);
    ]
  in
  List.iter
    (fun (gates, expected) ->
      let c = Optimize.circuit (Circuit.of_gates 3 gates) in
      Alcotest.(check int) "gate count" expected (Circuit.length c))
    cases

let test_merge_rotations () =
  let c =
    Optimize.circuit
      (Circuit.of_gates 2 [ Gate.Rz (0, 0.3); Gate.Rz (0, 0.4) ])
  in
  (match Circuit.gates c with
  | [ Gate.Rz (0, a) ] -> Alcotest.(check (float 1e-12)) "sum" 0.7 a
  | _ -> Alcotest.fail "expected one merged rz");
  (* merging to zero drops the gate entirely *)
  let z =
    Optimize.circuit
      (Circuit.of_gates 2 [ Gate.Rx (1, 0.3); Gate.Rx (1, -0.3) ])
  in
  Alcotest.(check int) "merged to identity" 0 (Circuit.length z);
  (* cphase merges across qubit order *)
  let cp =
    Optimize.circuit
      (Circuit.of_gates 2 [ Gate.Cphase (0, 1, 0.2); Gate.Cphase (1, 0, 0.5) ])
  in
  match Circuit.gates cp with
  | [ Gate.Cphase (_, _, a) ] -> Alcotest.(check (float 1e-12)) "cphase sum" 0.7 a
  | _ -> Alcotest.fail "expected one merged cphase"

let test_zero_rotation_dropped () =
  let c =
    Optimize.circuit
      (Circuit.of_gates 1 [ Gate.Rz (0, 0.0); Gate.Phase (0, 2.0 *. Float.pi) ])
  in
  Alcotest.(check int) "dropped" 0 (Circuit.length c)

let test_barrier_fences () =
  let c =
    Optimize.circuit
      (Circuit.of_gates 1 [ Gate.H 0; Gate.Barrier; Gate.H 0 ])
  in
  (* barrier prevents the cancellation *)
  Alcotest.(check int) "h barrier h kept" 3 (Circuit.length c)

let test_measure_blocks () =
  let c =
    Optimize.circuit
      (Circuit.of_gates 1 [ Gate.H 0; Gate.Measure 0; Gate.H 0 ])
  in
  Alcotest.(check int) "measure blocks" 3 (Circuit.length c)

let test_chain_cancellation () =
  (* H H H H collapses fully; H H H leaves one *)
  let four = Optimize.circuit (Circuit.of_gates 1 (List.init 4 (fun _ -> Gate.H 0))) in
  Alcotest.(check int) "four cancel" 0 (Circuit.length four);
  let three = Optimize.circuit (Circuit.of_gates 1 (List.init 3 (fun _ -> Gate.H 0))) in
  Alcotest.(check int) "three leave one" 1 (Circuit.length three)

let test_diagonal_commute_merge () =
  (* rz on a shared wire is diagonal, so the two cphases still merge *)
  let c =
    Optimize.circuit
      (Circuit.of_gates 2
         [ Gate.Cphase (0, 1, 0.3); Gate.Rz (0, 0.4); Gate.Cphase (0, 1, 0.2) ])
  in
  Alcotest.(check int) "merged through rz" 2 (Circuit.length c);
  let angles =
    List.filter_map
      (function
        | Gate.Cphase (_, _, a) -> Some a
        | _ -> None)
      (Circuit.gates c)
  in
  (match angles with
  | [ a ] -> Alcotest.(check (float 1e-12)) "cphase sum" 0.5 a
  | _ -> Alcotest.fail "expected exactly one cphase");
  (* a non-diagonal gate on a shared wire still blocks the merge *)
  let blocked =
    Optimize.circuit
      (Circuit.of_gates 2
         [ Gate.Cphase (0, 1, 0.3); Gate.H 0; Gate.Cphase (0, 1, 0.2) ])
  in
  Alcotest.(check int) "h blocks" 3 (Circuit.length blocked)

let test_cancel_through_commuting () =
  (* CNOT; RZ(control); CNOT: the rz is diagonal on the cnot's control,
     so the pass reaches through it and the cnots cancel at distance *)
  let c =
    Optimize.circuit
      (Circuit.of_gates 2
         [ Gate.Cnot (0, 1); Gate.Rz (0, 0.5); Gate.Cnot (0, 1) ])
  in
  (match Circuit.gates c with
  | [ Gate.Rz (0, a) ] -> Alcotest.(check (float 1e-12)) "rz kept" 0.5 a
  | _ -> Alcotest.fail "expected the cnots to cancel through the rz");
  (* X on the target commutes with CNOT too *)
  let x =
    Optimize.circuit
      (Circuit.of_gates 2 [ Gate.Cnot (0, 1); Gate.X 1; Gate.Cnot (0, 1) ])
  in
  (match Circuit.gates x with
  | [ Gate.X 1 ] -> ()
  | _ -> Alcotest.fail "expected the cnots to cancel through the x");
  (* RZ on the *target* anti-commutes with the CNOT: nothing moves *)
  let blocked =
    Optimize.circuit
      (Circuit.of_gates 2
         [ Gate.Cnot (0, 1); Gate.Rz (1, 0.5); Gate.Cnot (0, 1) ])
  in
  Alcotest.(check int) "target rz blocks" 3 (Circuit.length blocked)

let test_merge_through_commuting () =
  (* the two control-side rotations merge through the cnot *)
  let c =
    Optimize.circuit
      (Circuit.of_gates 2
         [ Gate.Rz (0, 0.3); Gate.Cnot (0, 1); Gate.Rz (0, 0.4) ])
  in
  Alcotest.(check int) "merged" 2 (Circuit.length c);
  match
    List.filter_map
      (function Gate.Rz (0, a) -> Some a | _ -> None)
      (Circuit.gates c)
  with
  | [ a ] -> Alcotest.(check (float 1e-12)) "rz sum" 0.7 a
  | _ -> Alcotest.fail "expected exactly one rz on qubit 0"

let test_redundancies_through_commuting_flag () =
  (* the legacy notion (QL005) cannot see through the cnot's control;
     the full commuting-aware notion (QL012) can *)
  let c =
    Circuit.of_gates 2
      [ Gate.Cnot (0, 1); Gate.Rz (0, 0.5); Gate.Cnot (0, 1) ]
  in
  Alcotest.(check (list (pair int int)))
    "plain notion blind" []
    (Optimize.redundancies ~through_commuting:false c);
  Alcotest.(check (list (pair int int)))
    "commuting notion sees the pair" [ (0, 2) ]
    (Optimize.redundancies c)

let test_redundancies_report () =
  let c =
    Circuit.of_gates 2
      [
        Gate.H 0; Gate.H 0;
        Gate.Cphase (0, 1, 0.1); Gate.Rz (0, 0.2); Gate.Cphase (0, 1, 0.3);
      ]
  in
  Alcotest.(check (list (pair int int)))
    "pairs found" [ (0, 1); (2, 4) ] (Optimize.redundancies c);
  Alcotest.(check (list (pair int int)))
    "clean after optimize" []
    (Optimize.redundancies (Optimize.circuit c))

let test_swap_cphase_lowering_cancels () =
  (* SWAP(a,b) then CPHASE(a,b): after decomposition, cx(a,b) meets
     cx(a,b) back to back and cancels - the win the pass targets. *)
  let c =
    Decompose.circuit
      (Circuit.of_gates 2 [ Gate.Swap (0, 1); Gate.Cphase (0, 1, 0.5) ])
  in
  let before = Circuit.length c in
  let after, stats = Optimize.with_stats c in
  Alcotest.(check int) "before = 6" 6 before;
  Alcotest.(check bool) "reduced" true (Circuit.length after < before);
  Alcotest.(check int) "stats before" before stats.Optimize.gates_before;
  Alcotest.(check int) "stats after" (Circuit.length after) stats.Optimize.gates_after;
  (* semantics preserved *)
  Alcotest.(check bool) "same state" true
    (Statevector.equal_up_to_global_phase
       (Statevector.of_circuit c)
       (Statevector.of_circuit (Circuit.of_gates 2 (Circuit.gates after))))

let random_circuit rng n len =
  Circuit.of_gates n
    (List.init len (fun _ ->
         match Rng.int rng 8 with
         | 0 -> Gate.H (Rng.int rng n)
         | 1 -> Gate.X (Rng.int rng n)
         | 2 -> Gate.Rz (Rng.int rng n, Rng.float rng 6.3 -. 3.15)
         | 3 -> Gate.Rx (Rng.int rng n, Rng.float rng 6.3 -. 3.15)
         | 4 ->
           let a = Rng.int rng n in
           Gate.Cnot (a, (a + 1) mod n)
         | 5 ->
           let a = Rng.int rng n in
           Gate.Cphase (a, (a + 1) mod n, Rng.float rng 6.3 -. 3.15)
         | 6 ->
           let a = Rng.int rng n in
           Gate.Swap (a, (a + 1) mod n)
         | _ -> Gate.Phase (Rng.int rng n, Rng.float rng 6.3 -. 3.15)))

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"peephole preserves semantics up to global phase"
    ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_circuit rng n 40 in
      let o = Optimize.circuit c in
      Circuit.length o <= Circuit.length c
      && Statevector.equal_up_to_global_phase ~eps:1e-8
           (Statevector.of_circuit c) (Statevector.of_circuit o))

let prop_optimize_idempotent =
  QCheck.Test.make ~name:"peephole is idempotent" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = Optimize.circuit (random_circuit rng n 30) in
      Circuit.equal c (Optimize.circuit c))

(* QCheck: the lint-facing redundancy report agrees with the rewriter -
   once the optimizer reaches a fixpoint, nothing is left to report. *)
let prop_redundancies_empty_on_fixpoint =
  QCheck.Test.make
    ~name:"redundancies is empty on an optimizer fixpoint" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      Optimize.redundancies (Optimize.circuit (random_circuit rng n 35)) = [])

(* Linear-only gates so the phase-polynomial oracle is always
   conclusive: the commuting look-through must preserve the canonical
   form exactly, on registers too big for the statevector. *)
let random_linear_circuit rng n len =
  let other a = (a + 1 + Rng.int rng (n - 1)) mod n in
  Circuit.of_gates n
    (List.init len (fun _ ->
         match Rng.int rng 6 with
         | 0 -> Gate.X (Rng.int rng n)
         | 1 -> Gate.Z (Rng.int rng n)
         | 2 -> Gate.Rz (Rng.int rng n, Rng.float rng 6.2 -. 3.1)
         | 3 ->
           let a = Rng.int rng n in
           Gate.Cnot (a, other a)
         | 4 ->
           let a = Rng.int rng n in
           Gate.Cphase (a, other a, Rng.float rng 6.2)
         | _ -> Gate.Phase (Rng.int rng n, Rng.float rng 6.2 -. 3.1)))

let prop_optimize_phase_poly_equivalent =
  QCheck.Test.make
    ~name:"peephole output is phase-polynomial equivalent" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_linear_circuit rng n 30 in
      match
        Qaoa_analysis.Phase_poly.equal_up_to_global_phase c
          (Optimize.circuit c)
      with
      | Qaoa_analysis.Phase_poly.Equivalent -> true
      | v ->
        QCheck.Test.fail_reportf "optimized circuit diverged: %s"
          (Qaoa_analysis.Phase_poly.verdict_to_string v))

(* --- Dag --- *)

let test_commutes_relation () =
  Alcotest.(check bool) "disjoint" true
    (Dag.commutes (Gate.H 0) (Gate.H 1));
  Alcotest.(check bool) "diagonal pair" true
    (Dag.commutes (Gate.Cphase (0, 1, 0.5)) (Gate.Cphase (1, 2, 0.3)));
  Alcotest.(check bool) "rz through cphase" true
    (Dag.commutes (Gate.Rz (1, 0.4)) (Gate.Cphase (1, 2, 0.3)));
  Alcotest.(check bool) "h vs cphase conservative" false
    (Dag.commutes (Gate.H 1) (Gate.Cphase (1, 2, 0.3)));
  Alcotest.(check bool) "cnot control diagonal" true
    (Dag.commutes (Gate.Cnot (0, 1)) (Gate.Rz (0, 0.4)));
  Alcotest.(check bool) "cnot target x" true
    (Dag.commutes (Gate.Cnot (0, 1)) (Gate.X 1));
  Alcotest.(check bool) "cnot target diagonal no" false
    (Dag.commutes (Gate.Cnot (0, 1)) (Gate.Rz (1, 0.4)));
  Alcotest.(check bool) "same-axis rotations" true
    (Dag.commutes (Gate.Rx (0, 0.1)) (Gate.Rx (0, 0.2)));
  Alcotest.(check bool) "measure ordered" false
    (Dag.commutes (Gate.Measure 0) (Gate.H 0))

let test_dag_qaoa_cost_layer_depth () =
  (* K4's six CPHASEs all commute: DAG depth must be the bin-packing
     bound of 3, independent of the (bad) given order. *)
  let bad_order =
    [ (0, 1); (1, 2); (0, 2); (2, 3); (0, 3); (1, 3) ]
  in
  let c =
    Circuit.of_gates 4
      (List.map (fun (a, b) -> Gate.Cphase (a, b, 0.5)) bad_order)
  in
  Alcotest.(check int) "naive layering depth 6" 6 (Layering.depth c);
  let dag = Dag.build c in
  Alcotest.(check int) "commutation-aware depth 3" 3 (Dag.depth dag)

let test_dag_ordered_dependencies () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Cnot (0, 1); Gate.H 1 ] in
  let dag = Dag.build c in
  Alcotest.(check (list int)) "cnot depends on h0" [ 0 ] (Dag.predecessors dag 1);
  Alcotest.(check (list int)) "h1 depends on cnot" [ 1 ] (Dag.predecessors dag 2);
  Alcotest.(check (list int)) "h0 has successor cnot" [ 1 ] (Dag.successors dag 0);
  Alcotest.(check int) "depth 3" 3 (Dag.depth dag)

let test_dag_barrier () =
  let c = Circuit.of_gates 2 [ Gate.H 0; Gate.Barrier; Gate.H 1 ] in
  let dag = Dag.build c in
  (* barrier orders h1 after h0 but costs no time step of its own *)
  Alcotest.(check int) "depth 2" 2 (Dag.depth dag);
  Alcotest.(check (list int)) "h1 waits for barrier" [ 1 ] (Dag.predecessors dag 2)

let test_dag_empty () =
  let dag = Dag.build (Circuit.create 3) in
  Alcotest.(check int) "empty depth" 0 (Dag.depth dag);
  Alcotest.(check int) "no nodes" 0 (List.length (Dag.nodes dag))

let test_topological_order_valid () =
  let rng = Rng.create 77 in
  for _ = 1 to 10 do
    let c = random_circuit rng 4 25 in
    let dag = Dag.build c in
    let order = Dag.topological_order dag in
    (* every node appears once *)
    Alcotest.(check int) "complete" (List.length (Dag.nodes dag))
      (List.length order);
    (* dependencies respected *)
    let position = Hashtbl.create 32 in
    List.iteri (fun i n -> Hashtbl.replace position n.Dag.id i) order;
    List.iter
      (fun n ->
        List.iter
          (fun p ->
            Alcotest.(check bool) "pred before" true
              (Hashtbl.find position p < Hashtbl.find position n.Dag.id))
          (Dag.predecessors dag n.Dag.id))
      (Dag.nodes dag)
  done

(* QCheck: reordering a circuit by DAG topological order preserves
   semantics (the commutation relation is sound). *)
let prop_dag_reorder_sound =
  QCheck.Test.make ~name:"DAG topological reorder preserves semantics"
    ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 5))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_circuit rng n 25 in
      let dag = Dag.build c in
      let reordered =
        Circuit.of_gates n
          (List.filter_map
             (fun node ->
               match node.Dag.gate with Gate.Barrier -> None | g -> Some g)
             (Dag.topological_order dag))
      in
      Statevector.equal_up_to_global_phase ~eps:1e-8
        (Statevector.of_circuit c)
        (Statevector.of_circuit reordered))

(* QCheck: DAG depth never exceeds the order-tied ASAP depth. *)
let prop_dag_depth_bound =
  QCheck.Test.make ~name:"DAG depth <= ASAP depth" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let c = random_circuit rng n 30 in
      Dag.depth (Dag.build c) <= Layering.depth c)

let suite =
  [
    ("cancel pairs", `Quick, test_cancel_pairs);
    ("merge rotations", `Quick, test_merge_rotations);
    ("zero rotations dropped", `Quick, test_zero_rotation_dropped);
    ("barrier fences", `Quick, test_barrier_fences);
    ("measure blocks", `Quick, test_measure_blocks);
    ("chain cancellation", `Quick, test_chain_cancellation);
    ("diagonal commute merge", `Quick, test_diagonal_commute_merge);
    ("cancel through commuting", `Quick, test_cancel_through_commuting);
    ("merge through commuting", `Quick, test_merge_through_commuting);
    ("redundancies through_commuting flag", `Quick,
     test_redundancies_through_commuting_flag);
    ("redundancies report", `Quick, test_redundancies_report);
    ("swap+cphase lowering cancels", `Quick, test_swap_cphase_lowering_cancels);
    ("dag commutes relation", `Quick, test_commutes_relation);
    ("dag qaoa cost layer depth", `Quick, test_dag_qaoa_cost_layer_depth);
    ("dag ordered dependencies", `Quick, test_dag_ordered_dependencies);
    ("dag barrier", `Quick, test_dag_barrier);
    ("dag empty", `Quick, test_dag_empty);
    ("topological order valid", `Quick, test_topological_order_valid);
    QCheck_alcotest.to_alcotest prop_optimize_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_optimize_idempotent;
    QCheck_alcotest.to_alcotest prop_redundancies_empty_on_fixpoint;
    QCheck_alcotest.to_alcotest prop_optimize_phase_poly_equivalent;
    QCheck_alcotest.to_alcotest prop_dag_reorder_sound;
    QCheck_alcotest.to_alcotest prop_dag_depth_bound;
  ]
