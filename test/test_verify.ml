(* Translation validation (qaoa_verify): the checker accepts every
   healthy compile across policies and topologies, rejects deliberately
   corrupted circuits with a diagnostic naming the offending gate, and
   the differential fuzzer's cross-checks (verifier vs Compliance vs
   Metrics) agree on seeded corpora.  Plus the satellite properties:
   Floyd-Warshall hop distances vs BFS, and OpenQASM round-trip gate
   counts. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Metrics = Qaoa_circuit.Metrics
module Qasm = Qaoa_circuit.Qasm
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Profile = Qaoa_hardware.Profile
module Paths = Qaoa_graph.Paths
module Mapping = Qaoa_backend.Mapping
module Compliance = Qaoa_backend.Compliance
module Check = Qaoa_verify.Check
module Fuzz = Qaoa_verify.Fuzz
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Compile = Qaoa_core.Compile
module Differential = Qaoa_experiments.Differential
module Workload = Qaoa_experiments.Workload
module Statevector = Qaoa_sim.Statevector
module Float_matrix = Qaoa_util.Float_matrix
module Rng = Qaoa_util.Rng

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let compile_one ?(topology = "tokyo") ?(nodes = 8) ?(seed = 3)
    ?(strategy = Compile.Ic None) () =
  let device = Differential.device_of_topology topology in
  let rng = Rng.create seed in
  let problem =
    List.hd (Workload.problems rng (Workload.Regular 3) ~n:nodes ~count:1)
  in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  let options = { Compile.default_options with seed } in
  let r = Compile.compile ~options ~strategy device problem params in
  let logical = Ansatz.circuit ~measure:true problem params in
  (device, problem, logical, r)

let validate_result ?swap_count device logical (r : Compile.result) circuit =
  let swap_count =
    match swap_count with Some c -> c | None -> r.Compile.swap_count
  in
  Check.validate ~device ~initial:r.Compile.initial_mapping
    ~final:r.Compile.final_mapping ~swap_count ~logical circuit

(* --- healthy compiles validate cleanly ----------------------------- *)

let test_healthy_all_strategies () =
  List.iter
    (fun strategy ->
      let device, _, logical, r = compile_one ~strategy () in
      let report = validate_result device logical r r.Compile.circuit in
      Alcotest.(check bool)
        (Compile.strategy_name strategy ^ " validates")
        true (Check.ok report);
      match report.Check.semantic with
      | Check.Checked { num_qubits; method_ } ->
        Alcotest.(check int) "semantic on 8 qubits" 8 num_qubits;
        Alcotest.(check bool) "statevector oracle within the limit" true
          (method_ = Check.Statevector)
      | Check.Skipped why -> Alcotest.fail ("semantic skipped: " ^ why))
    Differential.default_strategies

(* Above the statevector limit the Auto oracle now falls back to the
   phase-polynomial canonicalizer instead of skipping; Statevector_only
   restores the old skip, and its reason names both the count and the
   limit. *)
let test_semantic_above_limit_uses_phase_poly () =
  let device, _, logical, r = compile_one ~nodes:10 () in
  let options d =
    { d with Check.max_semantic_qubits = 9 }
  in
  let validate oracle =
    Check.validate
      ~options:{ (options (Check.default_options ())) with Check.oracle }
      ~device ~initial:r.Compile.initial_mapping
      ~final:r.Compile.final_mapping ~swap_count:r.Compile.swap_count
      ~logical r.Compile.circuit
  in
  let auto = validate Check.Auto in
  Alcotest.(check bool) "still ok" true (Check.ok auto);
  (match auto.Check.semantic with
  | Check.Checked { num_qubits; method_ = Check.Phase_polynomial } ->
    Alcotest.(check int) "checked on 10 qubits" 10 num_qubits
  | Check.Checked _ -> Alcotest.fail "expected the phase-polynomial oracle"
  | Check.Skipped why -> Alcotest.fail ("semantic skipped: " ^ why));
  let sv_only = validate Check.Statevector_only in
  Alcotest.(check bool) "still ok" true (Check.ok sv_only);
  match sv_only.Check.semantic with
  | Check.Skipped why ->
    Alcotest.(check bool) "reason names the limit" true
      (contains_substring ~sub:"10 qubits" why
      && contains_substring ~sub:"9-qubit" why)
  | Check.Checked _ -> Alcotest.fail "semantic should have been skipped"

(* --- corruption rejection ------------------------------------------ *)

let insert_at idx g gates =
  let rec go i = function
    | rest when i = idx -> g :: rest
    | x :: rest -> x :: go (i + 1) rest
    | [] -> [ g ]
  in
  go 0 gates

(* The acceptance-criterion case: a CNOT injected on an uncoupled
   physical pair must be rejected with a diagnostic naming the gate. *)
let test_wrong_pair_cnot_rejected () =
  let device, _, logical, r = compile_one () in
  (* tokyo qubits 0 and 19 are not coupled *)
  Alcotest.(check bool) "pair uncoupled" false (Device.coupled device 0 19);
  let idx = 5 in
  let gates = insert_at idx (Gate.Cnot (0, 19)) (Circuit.gates r.Compile.circuit) in
  let corrupted = Circuit.of_gates (Circuit.num_qubits r.Compile.circuit) gates in
  let report = validate_result device logical r corrupted in
  Alcotest.(check bool) "rejected" false (Check.ok report);
  let names_gate =
    List.exists
      (function
        | Check.Uncoupled_pair { gate_index; _ } -> gate_index = idx
        | _ -> false)
      report.Check.issues
  in
  Alcotest.(check bool) "diagnostic names gate 5" true names_gate;
  (* and Compliance agrees on the same gate index *)
  let compliance_hits =
    List.map
      (fun v -> v.Compliance.gate_index)
      (Compliance.violations device corrupted)
  in
  Alcotest.(check (list int)) "compliance names the same gate" [ idx ]
    compliance_hits;
  (* the printed diagnostic carries the index *)
  let some_message =
    List.map Check.issue_to_string report.Check.issues |> String.concat "\n"
  in
  Alcotest.(check bool) "message mentions gate 5" true
    (contains_substring ~sub:"gate 5" some_message)

(* A coupled but wrong-pair CNOT is structurally compliant, yet the gate
   accounting names it: its logical pre-image is not a gate the ansatz
   owes. *)
let test_coupled_wrong_pair_rejected () =
  let device, _, logical, r = compile_one ~topology:"linear16" () in
  let gates = Circuit.gates r.Compile.circuit in
  (* insert before the trailing measures so no measured wire is touched *)
  let num_measures =
    List.length (List.filter (function Gate.Measure _ -> true | _ -> false) gates)
  in
  let idx = List.length gates - num_measures in
  (* pick a coupled physical pair where both wires host logical qubits
     under the final mapping (the live mapping just before the measures) *)
  let final = r.Compile.final_mapping in
  let p, q =
    List.find
      (fun (p, q) ->
        Mapping.logical_at final p <> None && Mapping.logical_at final q <> None)
      (Device.coupling_edges device)
  in
  let corrupted =
    Circuit.of_gates
      (Circuit.num_qubits r.Compile.circuit)
      (insert_at idx (Gate.Cnot (p, q)) gates)
  in
  Alcotest.(check bool) "still coupling-compliant" true
    (Compliance.is_compliant device corrupted);
  let report = validate_result device logical r corrupted in
  Alcotest.(check bool) "rejected" false (Check.ok report);
  Alcotest.(check bool) "accounting names the gate" true
    (List.exists
       (function
         | Check.Unexpected_gate { gate_index; _ } -> gate_index = idx
         | _ -> false)
       report.Check.issues)

let test_dropped_gate_rejected () =
  let device, _, logical, r = compile_one () in
  let gates = Circuit.gates r.Compile.circuit in
  (* drop the last CPHASE: mapping replay is unaffected, accounting is *)
  let last_cphase =
    List.fold_left
      (fun (i, best) g ->
        (i + 1, match g with Gate.Cphase _ -> Some i | _ -> best))
      (0, None) gates
    |> snd |> Option.get
  in
  let corrupted =
    Circuit.of_gates
      (Circuit.num_qubits r.Compile.circuit)
      (List.filteri (fun i _ -> i <> last_cphase) gates)
  in
  let report = validate_result device logical r corrupted in
  Alcotest.(check bool) "rejected" false (Check.ok report);
  Alcotest.(check bool) "missing gate reported" true
    (List.exists
       (function
         | Check.Missing_gates { gates = [ Gate.Cphase _ ] } -> true
         | _ -> false)
       report.Check.issues)

let test_swap_count_mismatch () =
  let device, _, logical, r = compile_one () in
  let report =
    validate_result ~swap_count:(r.Compile.swap_count + 1) device logical r
      r.Compile.circuit
  in
  Alcotest.(check bool) "rejected" false (Check.ok report);
  Alcotest.(check bool) "swap count issue" true
    (List.exists
       (function
         | Check.Swap_count_mismatch { recorded; counted } ->
           recorded = r.Compile.swap_count + 1
           && counted = r.Compile.swap_count
         | _ -> false)
       report.Check.issues)

let test_final_mapping_mismatch () =
  (* find a seeded instance whose routing actually moves the mapping *)
  let device, _, logical, r =
    let rec search seed =
      if seed > 40 then Alcotest.fail "no seed produced swaps"
      else
        let (_, _, _, r) as case =
          compile_one ~topology:"linear16" ~strategy:Compile.Naive ~seed ()
        in
        if
          r.Compile.swap_count > 0
          && not (Mapping.equal r.Compile.initial_mapping r.Compile.final_mapping)
        then case
        else search (seed + 1)
    in
    search 1
  in
  (* lie about the final mapping: claim nothing moved *)
  let report =
    Check.validate ~device ~initial:r.Compile.initial_mapping
      ~final:r.Compile.initial_mapping ~swap_count:r.Compile.swap_count
      ~logical r.Compile.circuit
  in
  Alcotest.(check bool) "rejected" false (Check.ok report);
  Alcotest.(check bool) "mapping issue reported" true
    (List.exists
       (function
         | Check.Final_mapping_mismatch _ | Check.Readout_mismatch _ -> true
         | _ -> false)
       report.Check.issues)

(* Reordering non-commuting gates preserves the gate multiset but not the
   state: only the semantic stage can catch it, and it names the first
   divergent layer. *)
let test_noncommuting_reorder_caught () =
  let device = Topologies.linear 3 in
  let mapping = Mapping.trivial ~num_logical:3 ~num_physical:3 in
  let logical =
    Circuit.of_gates 3 [ Gate.H 0; Gate.Cphase (0, 1, 1.2); Gate.H 2 ]
  in
  let reordered =
    Circuit.of_gates 3 [ Gate.Cphase (0, 1, 1.2); Gate.H 0; Gate.H 2 ]
  in
  let report =
    Check.validate ~device ~initial:mapping ~final:mapping ~swap_count:0
      ~logical reordered
  in
  Alcotest.(check bool) "rejected" false (Check.ok report);
  match report.Check.issues with
  | [ Check.State_mismatch { layer = Some _; distance; _ } ] ->
    Alcotest.(check bool) "distance visible" true (distance > 1e-3)
  | [ Check.State_mismatch { layer = None; distance; _ } ] ->
    Alcotest.(check bool) "distance visible" true (distance > 1e-3)
  | _ -> Alcotest.fail "expected exactly one state mismatch"

let test_swap_permutation_tracked () =
  (* a SWAP that relocates a logical qubit is fine as long as the final
     mapping records it *)
  let device = Topologies.linear 2 in
  let initial = Mapping.trivial ~num_logical:1 ~num_physical:2 in
  let final = Mapping.swap_physical initial 0 1 in
  let logical = Circuit.of_gates 1 [ Gate.H 0; Gate.Measure 0 ] in
  let compiled =
    Circuit.of_gates 2 [ Gate.H 0; Gate.Swap (0, 1); Gate.Measure 1 ]
  in
  let report =
    Check.validate ~device ~initial ~final ~swap_count:1 ~logical compiled
  in
  Alcotest.(check bool) "valid" true (Check.ok report);
  (* claiming the qubit never moved must be rejected *)
  let lying =
    Check.validate ~device ~initial ~final:initial ~swap_count:1 ~logical
      compiled
  in
  Alcotest.(check bool) "rejected when mapping lies" false (Check.ok lying)

(* --- the Compile ~verify flag -------------------------------------- *)

let test_compile_verify_flag () =
  let device = Differential.device_of_topology "melbourne" in
  let rng = Rng.create 11 in
  let problem =
    List.hd (Workload.problems rng (Workload.Regular 3) ~n:8 ~count:1)
  in
  let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
  List.iter
    (fun strategy ->
      let options = { Compile.default_options with seed = 11; verify = true } in
      let r = Compile.compile ~options ~strategy device problem params in
      Alcotest.(check bool)
        (Compile.strategy_name strategy ^ " has verify phase")
        true
        (List.exists (fun pt -> pt.Compile.phase = "verify") r.Compile.phase_times))
    Differential.default_strategies

(* --- differential corpus ------------------------------------------- *)

(* Satellite: Compliance audited against the verifier on a 50-case seeded
   corpus - run_case cross-checks verifier vs Compliance vs Metrics and
   returns a detail string on any disagreement. *)
let test_corpus_50_cases_agree () =
  let cases =
    Differential.cases ~seed:555 ~count:8 ~min_nodes:6 ~max_nodes:10 ()
  in
  let cases = List.filteri (fun i _ -> i < 50) cases in
  Alcotest.(check int) "50 cases" 50 (List.length cases);
  List.iter
    (fun case ->
      match Differential.run_case case with
      | None -> ()
      | Some detail ->
        Alcotest.fail (Differential.case_name case ^ ": " ^ detail))
    cases

let prop_fuzz_corpus_clean =
  QCheck.Test.make ~name:"differential fuzz corpus has no failures" ~count:4
    QCheck.(int_bound 100_000)
    (fun seed ->
      let stats =
        Differential.fuzz ~seed ~count:3 ~min_nodes:6 ~max_nodes:9 ()
      in
      stats.Fuzz.failures = [])

(* --- fuzz engine --------------------------------------------------- *)

let test_fuzz_shrinks_to_minimum () =
  let run_case n = if n >= 7 then Some ("fails at " ^ string_of_int n) else None in
  let shrink n = if n > 0 then [ n - 1 ] else [] in
  let stats = Fuzz.run ~shrink ~run_case [ 3; 12; 9 ] in
  Alcotest.(check int) "cases" 3 stats.Fuzz.cases_run;
  Alcotest.(check int) "failures" 2 (List.length stats.Fuzz.failures);
  List.iter
    (fun f -> Alcotest.(check int) "shrunk to minimal" 7 f.Fuzz.shrunk)
    stats.Fuzz.failures

let test_fuzz_catches_exceptions () =
  let run_case n = if n = 1 then failwith "boom" else None in
  let stats = Fuzz.run ~run_case [ 0; 1; 2 ] in
  match stats.Fuzz.failures with
  | [ f ] ->
    Alcotest.(check int) "failing case" 1 f.Fuzz.case;
    Alcotest.(check bool) "detail mentions exception" true
      (contains_substring ~sub:"exception" f.Fuzz.detail)
  | _ -> Alcotest.fail "expected exactly one failure"

(* --- statevector distance ------------------------------------------ *)

let test_distance_up_to_global_phase () =
  let a = Statevector.of_circuit (Circuit.of_gates 2 [ Gate.H 0 ]) in
  (* RZ on a wire held in |0> contributes a pure global phase e^(-i th/2) *)
  let b =
    Statevector.of_circuit
      (Circuit.of_gates 2 [ Gate.H 0; Gate.Rz (1, 0.8) ])
  in
  Alcotest.(check bool) "phase-equal states at distance ~0" true
    (Statevector.distance_up_to_global_phase a b < 1e-9);
  let c = Statevector.of_circuit (Circuit.of_gates 2 [ Gate.X 1 ]) in
  let d = Statevector.distance_up_to_global_phase a c in
  Alcotest.(check bool) "orthogonal states at distance sqrt 2" true
    (Float.abs (d -. sqrt 2.0) < 1e-9)

(* --- satellite: Floyd-Warshall vs BFS ------------------------------ *)

let test_hop_distances_agree_with_bfs () =
  let devices =
    [
      Topologies.ibmq_20_tokyo ();
      Topologies.ibmq_16_melbourne ();
      Topologies.grid_6x6 ();
      Topologies.heavy_hex_27 ();
      Topologies.hypothetical_6q ();
      Topologies.linear 10;
      Topologies.ring 9;
    ]
  in
  List.iter
    (fun device ->
      let n = Device.num_qubits device in
      let fw = Profile.hop_distances device in
      for src = 0 to n - 1 do
        let bfs = Paths.bfs_distances device.Device.coupling src in
        for dst = 0 to n - 1 do
          let expected =
            if bfs.(dst) = max_int then Float.infinity else float_of_int bfs.(dst)
          in
          if Float_matrix.get fw src dst <> expected then
            Alcotest.failf "%s: d(%d,%d) = %g, BFS says %g"
              device.Device.name src dst
              (Float_matrix.get fw src dst)
              expected
        done
      done)
    devices

(* --- satellite: OpenQASM round trip -------------------------------- *)

let test_qasm_round_trip_counts () =
  List.iter
    (fun strategy ->
      let _, _, _, r = compile_one ~topology:"melbourne" ~seed:11 ~strategy () in
      let circuit = r.Compile.circuit in
      let parsed = Qasm.of_string (Qasm.to_string circuit) in
      Alcotest.(check int)
        (Compile.strategy_name strategy ^ " qubits survive")
        (Circuit.num_qubits circuit)
        (Circuit.num_qubits parsed);
      Alcotest.(check (list (pair string int)))
        (Compile.strategy_name strategy ^ " gate counts survive")
        (Metrics.counts_by_name circuit)
        (Metrics.counts_by_name parsed))
    Differential.default_strategies

let suite =
  [
    ("healthy compiles validate (7 policies)", `Quick, test_healthy_all_strategies);
    ("above limit: phase-poly oracle or explicit skip", `Quick,
     test_semantic_above_limit_uses_phase_poly);
    ("wrong-pair CNOT rejected by name", `Quick, test_wrong_pair_cnot_rejected);
    ("coupled wrong-pair CNOT rejected", `Quick, test_coupled_wrong_pair_rejected);
    ("dropped gate rejected", `Quick, test_dropped_gate_rejected);
    ("swap count mismatch rejected", `Quick, test_swap_count_mismatch);
    ("final mapping lie rejected", `Quick, test_final_mapping_mismatch);
    ("non-commuting reorder caught semantically", `Quick,
     test_noncommuting_reorder_caught);
    ("swap permutation tracked", `Quick, test_swap_permutation_tracked);
    ("compile ~verify flag", `Quick, test_compile_verify_flag);
    ("compliance/metrics/verifier agree on 50 cases", `Slow,
     test_corpus_50_cases_agree);
    QCheck_alcotest.to_alcotest prop_fuzz_corpus_clean;
    ("fuzz engine shrinks to minimum", `Quick, test_fuzz_shrinks_to_minimum);
    ("fuzz engine catches exceptions", `Quick, test_fuzz_catches_exceptions);
    ("statevector phase-aligned distance", `Quick,
     test_distance_up_to_global_phase);
    ("hop distances: Floyd-Warshall = BFS", `Quick,
     test_hop_distances_agree_with_bfs);
    ("qasm round-trip preserves counts", `Quick, test_qasm_round_trip_counts);
  ]
