(* Tests for the experiments harness: workload generation, the runner's
   aggregation, and smoke-scale figure regeneration (shape sanity). *)

module Workload = Qaoa_experiments.Workload
module Runner = Qaoa_experiments.Runner
module Figures = Qaoa_experiments.Figures
module Problem = Qaoa_core.Problem
module Compile = Qaoa_core.Compile
module Topologies = Qaoa_hardware.Topologies
module Graph = Qaoa_graph.Graph
module Rng = Qaoa_util.Rng

let test_workload_kinds () =
  Alcotest.(check string) "er name" "ER(p=0.5)"
    (Workload.kind_name (Workload.Erdos_renyi 0.5));
  Alcotest.(check string) "regular name" "6-regular"
    (Workload.kind_name (Workload.Regular 6));
  Alcotest.(check string) "gnm name" "G(n,m=8)" (Workload.kind_name (Workload.Gnm 8))

let test_workload_generation () =
  let rng = Rng.create 1 in
  let ps = Workload.problems rng (Workload.Regular 3) ~n:10 ~count:5 in
  Alcotest.(check int) "count" 5 (List.length ps);
  List.iter
    (fun p ->
      Alcotest.(check int) "vars" 10 p.Problem.num_vars;
      Alcotest.(check int) "3-regular edge count" 15
        (List.length (Problem.cphase_pairs p)))
    ps;
  let gnm = Workload.problems rng (Workload.Gnm 8) ~n:8 ~count:3 in
  List.iter
    (fun p ->
      Alcotest.(check int) "8 edges" 8 (List.length (Problem.cphase_pairs p)))
    gnm

let test_workload_no_empty_graphs () =
  let rng = Rng.create 2 in
  (* p = 0.02 on 6 nodes draws empty graphs often; problems must redraw *)
  let ps = Workload.problems rng (Workload.Erdos_renyi 0.02) ~n:6 ~count:10 in
  List.iter
    (fun p ->
      Alcotest.(check bool) "non-empty" true
        (List.length (Problem.cphase_pairs p) > 0))
    ps

let test_runner_aggregation () =
  let device = Topologies.ibmq_16_melbourne () in
  let rng = Rng.create 3 in
  let problems = Workload.problems rng (Workload.Regular 3) ~n:8 ~count:4 in
  let res =
    Runner.run ~device
      ~strategies:[ Compile.Naive; Compile.Ic None ]
      ~params:Workload.default_params problems
  in
  Alcotest.(check int) "two aggregates" 2 (List.length res);
  let naive = Runner.find res Compile.Naive in
  Alcotest.(check int) "instances recorded" 4 naive.Runner.instances;
  Alcotest.(check bool) "positive depth" true (naive.Runner.mean_depth > 0.0);
  Alcotest.(check bool) "success present (calibrated device)" true
    (Option.is_some naive.Runner.mean_success);
  (* ratio accessor *)
  let r =
    Runner.ratio res ~num:(Compile.Ic None) ~den:Compile.Naive (fun a ->
        a.Runner.mean_depth)
  in
  Alcotest.(check bool) "ratio finite" true (Float.is_finite r);
  Alcotest.check_raises "missing strategy"
    (Failure
       "Runner.find: strategy IP has no aggregate (aggregates cover: NAIVE, \
        IC)")
    (fun () -> ignore (Runner.find res Compile.Ip))

let test_runner_uncalibrated_success_none () =
  let device = Topologies.ibmq_20_tokyo () in
  let rng = Rng.create 4 in
  let problems = Workload.problems rng (Workload.Regular 3) ~n:8 ~count:2 in
  let res =
    Runner.run ~device ~strategies:[ Compile.Qaim ]
      ~params:Workload.default_params problems
  in
  Alcotest.(check bool) "no success metric" true
    (Option.is_none (Runner.find res Compile.Qaim).Runner.mean_success)

let test_scale_parsing () =
  Alcotest.(check bool) "smoke" true (Figures.scale_of_string "smoke" = Some Figures.Smoke);
  Alcotest.(check bool) "full" true (Figures.scale_of_string "FULL" = Some Figures.Full);
  Alcotest.(check bool) "bad" true (Figures.scale_of_string "huge" = None);
  Alcotest.(check string) "name" "default" (Figures.scale_name Figures.Default)

(* Smoke-scale figure runs: rows present, values finite and positive
   where they must be.  These run the full reproduction machinery. *)

let finite_positive rows =
  List.for_all
    (fun (_, vs) -> List.for_all (fun v -> Float.is_finite v && v > 0.0) vs)
    rows

let test_fig7_smoke () =
  let rows = Figures.fig7 ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check int) "12 workloads" 12 (List.length rows);
  Alcotest.(check bool) "finite" true (finite_positive rows)

let test_fig8_smoke () =
  let rows = Figures.fig8 ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check int) "5 sizes" 5 (List.length rows);
  Alcotest.(check bool) "finite" true (finite_positive rows)

let test_fig9_smoke () =
  let rows = Figures.fig9 ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check int) "12 workloads" 12 (List.length rows);
  Alcotest.(check bool) "finite" true (finite_positive rows)

let test_fig10_smoke () =
  let rows = Figures.fig10 ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check int) "6 rows" 6 (List.length rows);
  Alcotest.(check bool) "finite" true (finite_positive rows)

let test_fig11a_smoke () =
  let rows = Figures.fig11a ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check int) "5 strategies" 5 (List.length rows);
  (match rows with
  | ("NAIVE", [ d; g; t ]) :: _ ->
    Alcotest.(check (float 1e-9)) "naive depth normalized" 1.0 d;
    Alcotest.(check (float 1e-9)) "naive gates normalized" 1.0 g;
    Alcotest.(check (float 1e-9)) "naive time normalized" 1.0 t
  | _ -> Alcotest.fail "NAIVE row first");
  Alcotest.(check bool) "finite" true (finite_positive rows)

let test_fig12_smoke () =
  let rows = Figures.fig12 ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check int) "2 limits at smoke" 2 (List.length rows);
  (* tighter packing limits must not reduce gate order of magnitude *)
  Alcotest.(check bool) "finite" true
    (List.for_all
       (fun (_, vs) -> List.for_all (fun v -> Float.is_finite v && v >= 0.0) vs)
       rows)

let test_ring8_smoke () =
  let rows = Figures.fig_ring8 ~scale:Figures.Smoke ~quiet:true () in
  (match rows with
  | [ ("IC(+QAIM)", [ depth; gates; time ]) ] ->
    Alcotest.(check bool) "depth sane" true (depth > 5.0 && depth < 200.0);
    Alcotest.(check bool) "gates sane" true (gates > 10.0 && gates < 500.0);
    Alcotest.(check bool) "time well under the planner's 70 s" true (time < 1.0)
  | _ -> Alcotest.fail "expected a single IC row")

(* Determinism: the same seed and scale reproduce identical circuit
   metrics (wall-clock columns naturally vary, so drop the last column). *)
let test_figures_deterministic () =
  let structural rows =
    List.map
      (fun (label, vs) ->
        (label, List.filteri (fun i _ -> i < 2) vs))
      rows
  in
  let a = Figures.fig_ring8 ~scale:Figures.Smoke ~quiet:true () in
  let b = Figures.fig_ring8 ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check bool) "identical" true (structural a = structural b)

(* --- Ablations (smoke scale) --- *)

module Ablations = Qaoa_experiments.Ablations

let test_ablation_reverse_traversal_monotone_ish () =
  let rows =
    Ablations.reverse_traversal ~scale:Figures.Smoke ~quiet:true ()
  in
  Alcotest.(check int) "5 settings" 5 (List.length rows);
  (* 3 refinement iterations must not exceed the unrefined swap count *)
  let swaps_at i = List.nth (snd (List.nth rows i)) 0 in
  Alcotest.(check bool) "refined <= unrefined" true (swaps_at 3 <= swaps_at 0)

let test_ablation_peephole_never_hurts () =
  let rows = Ablations.peephole ~scale:Figures.Smoke ~quiet:true () in
  List.iter
    (fun (label, vs) ->
      match vs with
      | [ off; on; reduction ] ->
        Alcotest.(check bool) (label ^ " no increase") true (on <= off);
        Alcotest.(check bool) (label ^ " reduction >= 0") true (reduction >= 0.0)
      | _ -> Alcotest.fail "expected three columns")
    rows

let test_ablation_levels_monotone () =
  let rows = Ablations.qaoa_levels ~scale:Figures.Smoke ~quiet:true () in
  match rows with
  | [ (_, [ d1; g1 ]); (_, [ d2; g2 ]); (_, [ d3; g3 ]) ] ->
    Alcotest.(check bool) "depth grows with p" true (d1 < d2 && d2 < d3);
    Alcotest.(check bool) "gates grow with p" true (g1 < g2 && g2 < g3)
  | _ -> Alcotest.fail "expected three p rows"

let test_ablation_crosstalk_overhead_monotone () =
  let rows = Ablations.crosstalk ~scale:Figures.Smoke ~quiet:true () in
  let depth_at i = List.nth (snd (List.nth rows i)) 0 in
  (* sequentializing more couplings can only add depth *)
  Alcotest.(check bool) "monotone overhead" true
    (depth_at 0 <= depth_at 3 +. 1e-9)

let test_ablation_mapper_shootout_shape () =
  let rows = Ablations.mapper_shootout ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check int) "5 mappers" 5 (List.length rows);
  List.iter
    (fun (_, vs) ->
      List.iter
        (fun v -> Alcotest.(check bool) "positive" true (v > 0.0))
        vs)
    rows

let test_ablation_graph_families_shape () =
  let rows = Ablations.graph_families ~scale:Figures.Smoke ~quiet:true () in
  Alcotest.(check int) "four families" 4 (List.length rows);
  List.iter
    (fun (label, vs) ->
      Alcotest.(check int) (label ^ " four columns") 4 (List.length vs);
      List.iter
        (fun v -> Alcotest.(check bool) "finite positive" true (Float.is_finite v && v > 0.0))
        vs)
    rows

let test_workload_new_families () =
  let rng = Rng.create 77 in
  Alcotest.(check string) "ba name" "BA(m=2)"
    (Workload.kind_name (Workload.Barabasi_albert 2));
  Alcotest.(check string) "ws name" "WS(k=4,b=0.3)"
    (Workload.kind_name (Workload.Watts_strogatz (4, 0.3)));
  List.iter
    (fun kind ->
      let ps = Workload.problems rng kind ~n:12 ~count:2 in
      List.iter
        (fun p ->
          Alcotest.(check bool) "has edges" true
            (List.length (Problem.cphase_pairs p) > 0))
        ps)
    [ Workload.Barabasi_albert 2; Workload.Watts_strogatz (4, 0.3) ]

let test_ablation_iterative_never_worse () =
  let rows =
    Ablations.iterative_recompilation ~scale:Figures.Smoke ~quiet:true ()
  in
  match rows with
  | [ (_, [ d_single; _ ]); (_, [ d_iter; _ ]) ] ->
    Alcotest.(check bool) "iterated depth <= single" true (d_iter <= d_single)
  | _ -> Alcotest.fail "expected two rows"

let suite =
  [
    ("workload kinds", `Quick, test_workload_kinds);
    ("workload generation", `Quick, test_workload_generation);
    ("workload redraws empty graphs", `Quick, test_workload_no_empty_graphs);
    ("runner aggregation", `Quick, test_runner_aggregation);
    ("runner without calibration", `Quick, test_runner_uncalibrated_success_none);
    ("scale parsing", `Quick, test_scale_parsing);
    ("fig7 smoke", `Slow, test_fig7_smoke);
    ("fig8 smoke", `Slow, test_fig8_smoke);
    ("fig9 smoke", `Slow, test_fig9_smoke);
    ("fig10 smoke", `Slow, test_fig10_smoke);
    ("fig11a smoke", `Slow, test_fig11a_smoke);
    ("fig12 smoke", `Slow, test_fig12_smoke);
    ("ring8 smoke", `Quick, test_ring8_smoke);
    ("figures deterministic", `Quick, test_figures_deterministic);
    ("ablation: reverse traversal", `Slow, test_ablation_reverse_traversal_monotone_ish);
    ("ablation: peephole never hurts", `Slow, test_ablation_peephole_never_hurts);
    ("ablation: levels monotone", `Slow, test_ablation_levels_monotone);
    ("ablation: crosstalk overhead", `Slow, test_ablation_crosstalk_overhead_monotone);
    ("ablation: mapper shootout", `Slow, test_ablation_mapper_shootout_shape);
    ("ablation: iterative never worse", `Slow, test_ablation_iterative_never_worse);
    ("ablation: graph families", `Slow, test_ablation_graph_families_shape);
    ("workload: new families", `Quick, test_workload_new_families);
  ]
