(* Edge-case and configuration-coverage tests across the libraries:
   untested option paths, degenerate inputs, and failure modes. *)

module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Layering = Qaoa_circuit.Layering
module Device = Qaoa_hardware.Device
module Topologies = Qaoa_hardware.Topologies
module Mapping = Qaoa_backend.Mapping
module Router = Qaoa_backend.Router
module Compliance = Qaoa_backend.Compliance
module Statevector = Qaoa_sim.Statevector
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Qaim = Qaoa_core.Qaim
module Compile = Qaoa_core.Compile
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng

(* --- circuits --- *)

let test_with_num_qubits () =
  let c = Circuit.of_gates 2 [ Gate.Cnot (0, 1) ] in
  let widened = Circuit.with_num_qubits 5 c in
  Alcotest.(check int) "widened" 5 (Circuit.num_qubits widened);
  Alcotest.(check int) "gates kept" 1 (Circuit.length widened);
  Alcotest.check_raises "narrowing below a gate"
    (Invalid_argument "Circuit.with_num_qubits: gate out of range") (fun () ->
      ignore (Circuit.with_num_qubits 1 c))

let test_circuit_filter () =
  let c =
    Circuit.of_gates 2 [ Gate.H 0; Gate.Measure 0; Gate.H 1; Gate.Measure 1 ]
  in
  let unitary = Circuit.filter Gate.is_unitary c in
  Alcotest.(check int) "measures dropped" 2 (Circuit.length unitary)

let test_p0_ansatz () =
  (* zero levels: just the Hadamard wall (+ measures) *)
  let problem = Problem.of_maxcut (Generators.cycle 4) in
  let params = { Ansatz.gammas = [||]; betas = [||] } in
  Alcotest.(check int) "levels 0" 0 (Ansatz.levels params);
  let c = Ansatz.circuit ~measure:false problem params in
  Alcotest.(check int) "h wall only" 4 (Circuit.length c);
  (* expectation is the uniform superposition's m/2 *)
  Alcotest.(check (float 1e-9)) "m/2" 2.0 (Ansatz.expectation problem params)

let test_gate_equality_corner () =
  Alcotest.(check bool) "angle matters" false
    (Gate.equal (Gate.Rz (0, 0.1)) (Gate.Rz (0, 0.2)));
  Alcotest.(check bool) "orientation matters" false
    (Gate.equal (Gate.Cnot (0, 1)) (Gate.Cnot (1, 0)));
  Alcotest.(check bool) "swap orientation matters structurally" false
    (Gate.equal (Gate.Swap (0, 1)) (Gate.Swap (1, 0)))

(* --- router configs --- *)

let test_router_reliability_aware_without_calibration () =
  (* uncalibrated device: the flag silently falls back to hop distances *)
  let device = Topologies.linear 4 in
  let c = Circuit.of_gates 4 [ Gate.Cnot (0, 3) ] in
  let config = { Router.default_config with reliability_aware = true } in
  let r =
    Router.route ~config ~device
      ~initial:(Mapping.trivial ~num_logical:4 ~num_physical:4)
      c
  in
  Alcotest.(check bool) "compliant" true
    (Compliance.is_compliant device r.Router.circuit)

let test_router_seed_changes_tie_breaks () =
  (* distinct seeds may pick different (equally good) swaps; both stay
     correct *)
  let device = Topologies.ibmq_20_tokyo () in
  let rng = Rng.create 1 in
  let problem = Problem.of_maxcut (Generators.erdos_renyi rng ~n:14 ~p:0.4) in
  let circuit =
    Ansatz.circuit problem (Ansatz.params_p1 ~gamma:0.7 ~beta:0.4)
  in
  let initial = Mapping.random rng ~num_logical:14 ~num_physical:20 in
  List.iter
    (fun seed ->
      let config = { Router.default_config with seed } in
      let r = Router.route ~config ~device ~initial circuit in
      Alcotest.(check bool) "compliant" true
        (Compliance.is_compliant device r.Router.circuit))
    [ 1; 2; 3 ]

let test_route_empty_circuit () =
  let device = Topologies.linear 3 in
  let r =
    Router.route ~device
      ~initial:(Mapping.trivial ~num_logical:3 ~num_physical:3)
      (Circuit.create 3)
  in
  Alcotest.(check int) "no gates" 0 (Circuit.length r.Router.circuit);
  Alcotest.(check int) "no swaps" 0 r.Router.swap_count

(* --- QAIM config paths --- *)

let test_qaim_weighted_by_ops () =
  let rng = Rng.create 5 in
  let device = Topologies.ibmq_20_tokyo () in
  let problem = Problem.of_maxcut (Generators.random_regular rng ~n:10 ~d:3) in
  let config = { Qaim.default_config with weighted_by_ops = true } in
  let m = Qaim.initial_mapping ~config rng device problem in
  Alcotest.(check int) "valid mapping" 10 (Mapping.num_logical m);
  let targets = Array.to_list (Mapping.l2p_array m) in
  Alcotest.(check int) "injective" 10 (List.length (List.sort_uniq compare targets))

let test_qaim_order_one () =
  let rng = Rng.create 6 in
  let device = Topologies.ibmq_20_tokyo () in
  let problem = Problem.of_maxcut (Generators.cycle 6) in
  let config = { Qaim.default_config with strength_order = 1 } in
  let m = Qaim.initial_mapping ~config rng device problem in
  Alcotest.(check int) "valid" 6 (Mapping.num_logical m)

(* --- compile option paths --- *)

let test_compile_without_measure () =
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.cycle 6) in
  let options = { Compile.default_options with measure = false } in
  List.iter
    (fun strategy ->
      let r =
        Compile.compile ~options ~strategy device problem
          (Ansatz.params_p1 ~gamma:0.7 ~beta:0.4)
      in
      Alcotest.(check int)
        (Compile.strategy_name strategy ^ " no measures")
        0 r.Compile.metrics.Qaoa_circuit.Metrics.measure_count)
    [ Compile.Naive; Compile.Ip; Compile.Ic None ]

let test_compile_problem_too_large () =
  let device = Topologies.linear 4 in
  let problem = Problem.of_maxcut (Generators.cycle 6) in
  Alcotest.check_raises "too large"
    (Compile.Error (Compile.Too_many_qubits { needed = 6; available = 4 }))
    (fun () ->
      ignore
        (Compile.compile ~strategy:Compile.Naive device problem
           (Ansatz.params_p1 ~gamma:0.7 ~beta:0.4)))

let test_single_edge_problem_all_strategies () =
  (* degenerate 2-node problem flows through every strategy *)
  let device = Topologies.ibmq_16_melbourne () in
  let problem = Problem.of_maxcut (Generators.path 2) in
  List.iter
    (fun strategy ->
      let r =
        Compile.compile ~strategy device problem
          (Ansatz.params_p1 ~gamma:0.7 ~beta:0.4)
      in
      Alcotest.(check bool)
        (Compile.strategy_name strategy ^ " compliant")
        true
        (Compliance.is_compliant device r.Compile.circuit))
    Compile.all_strategies

(* --- simulator edge cases --- *)

let test_overlap_size_mismatch () =
  let a = Statevector.create 2 and b = Statevector.create 3 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Statevector.overlap: size mismatch") (fun () ->
      ignore (Statevector.overlap_probability a b))

let test_zero_qubit_state () =
  let sv = Statevector.create 0 in
  Alcotest.(check (float 1e-12)) "trivial state" 1.0 (Statevector.probability sv 0);
  Alcotest.(check (float 1e-12)) "norm" 1.0 (Statevector.norm sv)

let test_barrier_only_circuit () =
  let c = Circuit.of_gates 2 [ Gate.Barrier; Gate.Barrier ] in
  Alcotest.(check int) "depth 0" 0 (Layering.depth c);
  let sv = Statevector.of_circuit c in
  Alcotest.(check (float 1e-12)) "identity" 1.0 (Statevector.probability sv 0)

let suite =
  [
    ("with_num_qubits", `Quick, test_with_num_qubits);
    ("circuit filter", `Quick, test_circuit_filter);
    ("p=0 ansatz", `Quick, test_p0_ansatz);
    ("gate equality corners", `Quick, test_gate_equality_corner);
    ("router reliability fallback", `Quick, test_router_reliability_aware_without_calibration);
    ("router seed tie-breaks", `Quick, test_router_seed_changes_tie_breaks);
    ("route empty circuit", `Quick, test_route_empty_circuit);
    ("qaim weighted by ops", `Quick, test_qaim_weighted_by_ops);
    ("qaim order one", `Quick, test_qaim_order_one);
    ("compile without measure", `Quick, test_compile_without_measure);
    ("compile problem too large", `Quick, test_compile_problem_too_large);
    ("two-qubit problem all strategies", `Quick, test_single_edge_problem_all_strategies);
    ("overlap size mismatch", `Quick, test_overlap_size_mismatch);
    ("zero-qubit state", `Quick, test_zero_qubit_state);
    ("barrier-only circuit", `Quick, test_barrier_only_circuit);
  ]
