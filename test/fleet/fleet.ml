(* Shard-fleet tests: everything here forks.  OCaml 5 forbids
   [Unix.fork] in any process that has ever created a domain - even
   one already joined - so these tests live in their own executable
   whose parent process stays domain-free: the shard supervisor only
   talks sockets, daemon children spawn their pools {e after} the
   fork, and the in-process reference runs (whose pool spawns domains)
   are computed behind a fork of their own ([in_subprocess]). *)

module Cache = Qaoa_serve.Cache
module Serve = Qaoa_serve.Serve
module Supervise = Qaoa_serve.Supervise
module Persist = Qaoa_serve.Persist
module Daemon = Qaoa_serve.Daemon
module Shard = Qaoa_serve.Shard
module Chaos = Qaoa_journal.Chaos
module Json = Qaoa_obs.Json

let config ?(workers = 1) ?(sort = false) ?cache ?persist ?supervise () =
  {
    Serve.workers;
    queue_capacity = 16;
    sort;
    timings = false;
    cache;
    persist;
    supervise = Option.value supervise ~default:Supervise.default_config;
    drain = None;
    inflight = Atomic.make 0;
  }

let corpus = lazy (Serve.gen_corpus ~seed:11 ~count:16 ())

(* Run [f] in a forked child and marshal its result back over a pipe.
   The child may create domains (it never forks again); the parent
   must not. *)
let in_subprocess (f : unit -> 'a) : 'a =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let result = try Ok (f ()) with e -> Error (Printexc.to_string e) in
    let oc = Unix.out_channel_of_descr w in
    Marshal.to_channel oc (result : (_, string) result) [];
    flush oc;
    Unix._exit 0
  | pid ->
    Unix.close w;
    let ic = Unix.in_channel_of_descr r in
    let result = (Marshal.from_channel ic : ('a, string) result) in
    (try close_in ic with _ -> ());
    ignore (Unix.waitpid [] pid);
    (match result with
    | Ok v -> v
    | Error msg -> Alcotest.failf "subprocess reference failed: %s" msg)

(* The batch-path reference bytes, computed without creating a domain
   in this process. *)
let serve_reference ?sort lines =
  in_subprocess (fun () -> fst (Serve.run_lines (config ?sort ()) lines))

(* Shard fleets below fork this child: a full daemon (own pool, own
   cache, optionally its own journal) wired to the parent-death pipe.
   [crash] installs a chaos plan in one specific generation only -
   re-arming it on every respawn would flap forever. *)
let shard_child ?persist_base ?(resume = false) ?crash ?die () ~slot
    ~generation ~socket_path ~shutdown_fd =
  match die with
  | Some f when f ~slot ~generation -> 9
  | _ ->
    (match crash with
    | Some (s, g, plan) when s = slot && g = generation ->
      Chaos.set_plan (Some plan)
    | _ -> Chaos.set_plan None);
    let drain = Atomic.make 0 in
    let cache = Cache.create ~capacity:256 () in
    let persist =
      Option.map
        (fun base ->
          Persist.open_
            ~resume:(resume || generation > 0)
            ~dir:(Filename.concat base (Printf.sprintf "shard-%d" slot))
            cache)
        persist_base
    in
    let cfg =
      { (config ~cache ()) with Serve.persist; drain = Some drain }
    in
    let _stats = Daemon.run ~shutdown_fd cfg ~socket_path ~drain in
    (match persist with Some p -> Persist.finish p cache | None -> ());
    Atomic.get drain

let shard_sockets_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "qaoa-test-shard-%d-%d" (Unix.getpid ()) !counter)

let rm_shard_sockets dir shards =
  for k = 0 to shards - 1 do
    try Sys.remove (Filename.concat dir (Printf.sprintf "shard-%d.sock" k))
    with Sys_error _ -> ()
  done;
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let rm_shard_journals base shards =
  for k = 0 to shards - 1 do
    let dir = Filename.concat base (Printf.sprintf "shard-%d" k) in
    (try Sys.remove (Filename.concat dir Persist.default_filename)
     with Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  done;
  try Unix.rmdir base with Unix.Unix_error _ -> ()

let shard_config ?sort ?on_spawn ~shards ~socket_dir child =
  {
    (Shard.default_config ~shards ~socket_dir ~child ()) with
    Shard.sort = Option.value sort ~default:true;
    probe_interval_s = 0.02;
    backoff_base_s = 0.01;
    backoff_cap_s = 0.05;
    on_spawn;
  }

let shard_corpus =
  lazy
    ((* two poisoned lines ride along: the parent must answer them with
        the same global line numbers any shard count (or the plain
        batch path) would use *)
     match Lazy.force corpus with
     | first :: rest -> ("this is not json" :: first :: rest) @ [ {|{"id":"z","x":1}|} ]
     | [] -> assert false)

(* The headline guarantee: sorted output is byte-identical across
   --shards 1/2/4 and equal to the in-process batch path, poisoned
   lines included; input-order mode holds too. *)
let test_shard_byte_identity () =
  let lines = Lazy.force shard_corpus in
  let sorted_ref = serve_reference ~sort:true lines in
  List.iter
    (fun shards ->
      let socket_dir = shard_sockets_dir () in
      Fun.protect ~finally:(fun () -> rm_shard_sockets socket_dir shards)
      @@ fun () ->
      let out, stats =
        Shard.run_lines
          (shard_config ~shards ~socket_dir (shard_child ()))
          lines
      in
      Alcotest.(check (list string))
        (Printf.sprintf "%d shards, sorted" shards)
        sorted_ref out;
      Alcotest.(check int)
        (Printf.sprintf "%d shards spawned once each" shards)
        shards stats.Shard.spawned;
      Alcotest.(check int) "no restarts" 0 stats.Shard.restarts)
    [ 1; 2; 4 ];
  let input_ref = serve_reference lines in
  let socket_dir = shard_sockets_dir () in
  Fun.protect ~finally:(fun () -> rm_shard_sockets socket_dir 2)
  @@ fun () ->
  let out, _ =
    Shard.run_lines
      (shard_config ~sort:false ~shards:2 ~socket_dir (shard_child ()))
      lines
  in
  Alcotest.(check (list string)) "2 shards, input order" input_ref out

(* Chaos kills one child mid-batch: its in-flight requests replay to a
   survivor exactly once (no duplicate, no missing line), the restart
   is counted, and the sorted bytes never change. *)
let test_shard_crash_replay () =
  let lines = Lazy.force shard_corpus in
  let sorted_ref = serve_reference ~sort:true lines in
  let socket_dir = shard_sockets_dir () in
  let base = shard_sockets_dir () in
  Fun.protect ~finally:(fun () ->
      rm_shard_sockets socket_dir 2;
      rm_shard_journals base 2)
  @@ fun () ->
  let crash =
    (0, 0, { Chaos.action = Chaos.Crash_after 3; mode = Chaos.Exit })
  in
  let out, stats =
    Shard.run_lines
      (shard_config ~shards:2 ~socket_dir
         (shard_child ~persist_base:base ~crash ()))
      lines
  in
  Alcotest.(check (list string)) "crash leaves the bytes alone" sorted_ref out;
  Alcotest.(check int) "every line answered exactly once"
    (List.length lines) (List.length out);
  Alcotest.(check int) "no duplicate responses" (List.length out)
    (List.length (List.sort_uniq compare out));
  Alcotest.(check bool) "the death was a restart" true
    (stats.Shard.restarts >= 1);
  Alcotest.(check bool) "in-flight work was replayed" true
    (stats.Shard.rerouted >= 1)

(* SIGKILL a child mid-batch from outside: the batch still completes
   byte-identically, and afterwards every pid the fleet ever spawned
   is both dead (kill 0 => ESRCH) and reaped (waitpid => ECHILD - no
   zombie left for init to inherit). *)
let test_shard_sigkill_reap () =
  let lines = Lazy.force shard_corpus in
  let sorted_ref = serve_reference ~sort:true lines in
  let socket_dir = shard_sockets_dir () in
  Fun.protect ~finally:(fun () -> rm_shard_sockets socket_dir 2)
  @@ fun () ->
  let pids = ref [] in
  let first_pid = ref None in
  let on_spawn ~slot:_ ~generation:_ ~pid =
    pids := pid :: !pids;
    if !first_pid = None then first_pid := Some pid
  in
  let produced = ref 0 in
  let remaining = ref lines in
  let produce () =
    incr produced;
    (* let some responses flow, then murder the first child cold *)
    if !produced = 8 then
      Option.iter
        (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        !first_pid;
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      Some (!produced, l)
  in
  let out = ref [] in
  let stats =
    Shard.run_batch
      (shard_config ~on_spawn ~shards:2 ~socket_dir (shard_child ()))
      ~produce
      ~emit:(fun line -> out := line :: !out)
  in
  Alcotest.(check (list string))
    "sigkill leaves the bytes alone" sorted_ref
    (List.rev !out);
  Alcotest.(check bool) "the kill was noticed" true (stats.Shard.restarts >= 1);
  List.iter
    (fun pid ->
      (match Unix.kill pid 0 with
      | () -> Alcotest.failf "pid %d still alive after the run" pid
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ());
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | _ -> Alcotest.failf "pid %d was never reaped (zombie)" pid
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ())
    !pids

(* Two stillborn generations trip the flap detector (slot degraded,
   keyspace rerouted); the third generation serves, passes its probe
   streak, and the owner re-adopts - visible as cache lookups landing
   on slot 0 again before the batch ends. *)
let test_shard_flap_degrade_readopt () =
  let lines =
    Serve.gen_corpus ~seed:11 ~count:40 ()
  in
  let sorted_ref = serve_reference ~sort:true lines in
  let socket_dir = shard_sockets_dir () in
  Fun.protect ~finally:(fun () -> rm_shard_sockets socket_dir 2)
  @@ fun () ->
  let die ~slot ~generation = slot = 0 && generation < 2 in
  let cfg =
    {
      (shard_config ~shards:2 ~socket_dir (shard_child ~die ())) with
      Shard.flap_threshold = 2;
      flap_window_s = 60.0;
      readopt_streak = 2;
      inflight_per_shard = 1;
    }
  in
  let remaining = ref lines in
  let line_no = ref 0 in
  let produce () =
    match !remaining with
    | [] -> None
    | l :: rest ->
      remaining := rest;
      incr line_no;
      (* trickle the corpus so the tail arrives after slot 0 has
         recovered and been re-adopted *)
      Unix.sleepf 0.015;
      Some (!line_no, l)
  in
  let out = ref [] in
  let stats =
    Shard.run_batch cfg ~produce ~emit:(fun line -> out := line :: !out)
  in
  Alcotest.(check (list string))
    "flapping leaves the bytes alone" sorted_ref
    (List.rev !out);
  Alcotest.(check int) "two stillborn generations" 2 stats.Shard.restarts;
  Alcotest.(check int) "slot degraded once" 1 stats.Shard.flapped;
  Alcotest.(check bool) "requests rerouted while degraded" true
    (stats.Shard.rerouted >= 1);
  match List.assoc_opt 0 stats.Shard.shard_stats with
  | None -> Alcotest.fail "slot 0 reported no stats (never recovered)"
  | Some line -> (
    match Json.of_string_opt line with
    | Some (Json.Assoc fields) -> (
      match List.assoc_opt "cache" fields with
      | Some (Json.Assoc cache) -> (
        match List.assoc_opt "lookups" cache with
        | Some (Json.Int n) ->
          Alcotest.(check bool)
            "slot 0 served again after re-adoption" true (n > 0)
        | _ -> Alcotest.fail "slot 0 stats has no lookup count")
      | _ -> Alcotest.fail "slot 0 stats has no cache object")
    | _ -> Alcotest.fail "slot 0 stats is not a json object")

(* Parent restart with warm journals: a second fleet over the same
   --cache-dir answers the whole corpus from its per-shard caches -
   zero misses on every shard, same bytes. *)
let test_shard_warm_restart_zero_misses () =
  let lines = Lazy.force shard_corpus in
  let socket_dir = shard_sockets_dir () in
  let base = shard_sockets_dir () in
  Fun.protect ~finally:(fun () ->
      rm_shard_sockets socket_dir 2;
      rm_shard_journals base 2)
  @@ fun () ->
  let cold, _ =
    Shard.run_lines
      (shard_config ~shards:2 ~socket_dir (shard_child ~persist_base:base ()))
      lines
  in
  let warm, stats =
    Shard.run_lines
      (shard_config ~shards:2 ~socket_dir
         (shard_child ~persist_base:base ~resume:true ()))
      lines
  in
  Alcotest.(check (list string)) "warm restart, same bytes" cold warm;
  Alcotest.(check int) "both shards reported stats" 2
    (List.length stats.Shard.shard_stats);
  List.iter
    (fun (slot, line) ->
      match Json.of_string_opt line with
      | Some (Json.Assoc fields) -> (
        match List.assoc_opt "cache" fields with
        | Some (Json.Assoc cache) ->
          Alcotest.(check bool)
            (Printf.sprintf "shard %d recompiled nothing" slot)
            true
            (List.assoc_opt "misses" cache = Some (Json.Int 0))
        | _ -> Alcotest.failf "shard %d stats has no cache" slot)
      | _ -> Alcotest.failf "shard %d stats is not json" slot)
    stats.Shard.shard_stats

let () =
  Alcotest.run "qaoa fleet"
    [
      ( "shard-fleet",
        [
          ( "byte identity across fleet sizes",
            `Slow,
            test_shard_byte_identity );
          ("crash replay exactly once", `Slow, test_shard_crash_replay);
          ("sigkill reaped, no zombie", `Slow, test_shard_sigkill_reap);
          ("flap, degrade, re-adopt", `Slow, test_shard_flap_degrade_readopt);
          ( "warm restart zero recompiles",
            `Slow,
            test_shard_warm_restart_zero_misses );
        ] );
    ]
