(* The serving layer: domain pool, artifact cache, request schema, and
   the determinism guarantees the JSONL service advertises. *)

module Pool = Qaoa_serve.Pool
module Cache = Qaoa_serve.Cache
module Request = Qaoa_serve.Request
module Serve = Qaoa_serve.Serve
module Rng = Qaoa_util.Rng
module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Json = Qaoa_obs.Json
module Compile = Qaoa_core.Compile
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Topologies = Qaoa_hardware.Topologies
module Check = Qaoa_verify.Check

(* --- pool ---------------------------------------------------------- *)

let test_pool_map_matches_sequential () =
  let input = Array.init 97 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun workers ->
      Alcotest.(check (array int))
        (Printf.sprintf "map with %d workers" workers)
        expected
        (Pool.map ~workers f input))
    [ 1; 2; 4; 8 ]

let test_pool_map_empty_and_exceptions () =
  Alcotest.(check (array int)) "empty input" [||] (Pool.map ~workers:4 succ [||]);
  Alcotest.check_raises "first failure by index re-raised"
    (Failure "item 5") (fun () ->
      ignore
        (Pool.map ~workers:4
           (fun i -> if i >= 5 then failwith (Printf.sprintf "item %d" i) else i)
           (Array.init 64 (fun i -> i))))

let test_pool_stream_ordered () =
  List.iter
    (fun (workers, capacity) ->
      let n = 200 in
      let next = ref 0 in
      let produce () =
        if !next >= n then None
        else begin
          let v = !next in
          incr next;
          Some v
        end
      in
      let seen = ref [] in
      let count =
        Pool.stream ~workers ~queue_capacity:capacity ~produce
          ~consume:(fun seq v -> seen := (seq, v) :: !seen)
          (fun v -> v * 3)
      in
      Alcotest.(check int) "all items processed" n count;
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "submission order (%d workers, queue %d)" workers
           capacity)
        (List.init n (fun i -> (i, i * 3)))
        (List.rev !seen))
    [ (1, 1); (1, 4); (4, 2); (4, 64); (8, 3) ]

let test_pool_stream_propagates_job_exception () =
  let next = ref 0 in
  let produce () =
    if !next >= 40 then None
    else begin
      let v = !next in
      incr next;
      Some v
    end
  in
  Alcotest.check_raises "job exception re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.stream ~workers:4 ~produce
           ~consume:(fun _ _ -> ())
           (fun v -> if v = 17 then failwith "boom" else v)))

(* --- Rng.split ----------------------------------------------------- *)

(* The split stream must not depend on how much the parent has drawn:
   that is what makes work handed to pool workers reproducible when the
   dispatch order changes. *)
let test_split_independent_of_draw_position () =
  let child_draws parent =
    let c = Rng.split parent in
    List.init 8 (fun _ -> Rng.int c 1_000_000)
  in
  let a = Rng.create 1234 in
  let b = Rng.create 1234 in
  ignore (Rng.int b 99);
  ignore (Rng.float b 1.0);
  ignore (Rng.bool b);
  Alcotest.(check (list int))
    "first split agrees regardless of parent draws" (child_draws a)
    (child_draws b);
  (* ... and the second split too, even with more interleaved draws. *)
  ignore (Rng.int b 7);
  Alcotest.(check (list int))
    "second split agrees regardless of parent draws" (child_draws a)
    (child_draws b)

let test_split_streams_distinct () =
  (* 64 parents x 4 splits: no two children may share a stream prefix,
     and none may clone its parent. *)
  let tbl = Hashtbl.create 512 in
  let add key tag =
    match Hashtbl.find_opt tbl key with
    | Some other ->
      Alcotest.failf "stream prefix collision between %s and %s" other tag
    | None -> Hashtbl.replace tbl key tag
  in
  let prefix rng = List.init 4 (fun _ -> Rng.int rng 1_000_000_000) in
  for seed = 0 to 63 do
    let parent = Rng.create seed in
    let children =
      List.init 4 (fun k -> (Printf.sprintf "seed %d split %d" seed k, Rng.split parent))
    in
    add (prefix (Rng.create seed)) (Printf.sprintf "seed %d parent" seed);
    List.iter (fun (tag, c) -> add (prefix c) tag) children
  done

(* --- canonical graph hash ------------------------------------------ *)

let apply_permutation perm g =
  Graph.of_edges (Graph.num_vertices g)
    (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Graph.edges g))

let prop_canonical_hash_invariant =
  QCheck.Test.make ~name:"canonical_hash invariant under relabeling" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.4 in
      let h = Graph.canonical_hash g in
      (* vertex relabeling *)
      let relabeled = apply_permutation (Rng.permutation rng n) g in
      (* edge-list spelling: shuffled order, flipped orientations *)
      let respelled =
        Graph.of_edges n
          (Rng.shuffle_list rng
             (List.map
                (fun (u, v) -> if Rng.bool rng then (v, u) else (u, v))
                (Graph.edges g)))
      in
      Graph.canonical_hash relabeled = h && Graph.canonical_hash respelled = h)

let test_canonical_hash_separates_simple_cases () =
  let path = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let star = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  let triangle = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "path <> star" true
    (Graph.canonical_hash path <> Graph.canonical_hash star);
  Alcotest.(check bool) "path <> triangle" true
    (Graph.canonical_hash path <> Graph.canonical_hash triangle);
  Alcotest.(check bool) "empty graph hashes consistently" true
    (Graph.canonical_hash (Graph.create 0) = Graph.canonical_hash (Graph.create 0))

(* --- request schema ------------------------------------------------ *)

let parse_ok line =
  match Request.of_line line with
  | Ok r -> r
  | Error e -> Alcotest.failf "expected parse, got error: %s" e

let parse_err line =
  match Request.of_line line with
  | Ok _ -> Alcotest.failf "expected error for %s" line
  | Error e -> e

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_request_normalization () =
  (* Different textual spellings of the same request: edge order,
     orientation, duplicates. *)
  let a = parse_ok {|{"id":"a","graph":{"n":4,"edges":[[0,1],[2,3],[1,2]]}}|} in
  let b = parse_ok {|{"id":"b","graph":{"n":4,"edges":[[2,1],[1,0],[3,2],[0,1]]}}|} in
  Alcotest.(check string) "fingerprints agree" (Request.fingerprint a)
    (Request.fingerprint b);
  Alcotest.(check bool) "cache keys agree" true
    (Request.cache_key a = Request.cache_key b);
  (* round-trip: serialized normal form parses back to the same key *)
  let c = parse_ok (Json.to_string (Request.to_json a)) in
  Alcotest.(check string) "round-trip fingerprint" (Request.fingerprint a)
    (Request.fingerprint c)

let test_request_rejections () =
  let check_err name line sub =
    let e = parse_err line in
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions %S (got %S)" name sub e)
      true
      (contains_substring ~sub e)
  in
  check_err "not json" "nope" "malformed JSON";
  check_err "not an object" "[1,2]" "object";
  check_err "missing id" {|{"graph":{"n":2,"edges":[[0,1]]}}|} "id";
  check_err "unknown field" {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"sede":7}|}
    "unknown field";
  check_err "no source" {|{"id":"a"}|} "graph";
  check_err "both sources"
    {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"qasm":"x"}|} "not both";
  check_err "self loop" {|{"id":"a","graph":{"n":3,"edges":[[1,1]]}}|} "self-loop";
  check_err "edge range" {|{"id":"a","graph":{"n":3,"edges":[[0,7]]}}|} "range";
  check_err "edgeless" {|{"id":"a","graph":{"n":3,"edges":[]}}|} "no edges";
  check_err "bad policy" {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"policy":"x"}|}
    "unknown policy";
  check_err "packing limit scope"
    {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"policy":"qaim","packing_limit":4}|}
    "packing_limit"

(* --- cache --------------------------------------------------------- *)

let key i = { Cache.graph_hash = i; fingerprint = Printf.sprintf "k%d" i }

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.store c (key 1) [ ("v", Json.Int 1) ];
  Cache.store c (key 2) [ ("v", Json.Int 2) ];
  ignore (Cache.find c (key 1));
  (* key 2 is now least recently used; inserting key 3 must evict it *)
  Cache.store c (key 3) [ ("v", Json.Int 3) ];
  Alcotest.(check bool) "key 1 survives" true (Cache.find c (key 1) <> None);
  Alcotest.(check bool) "key 2 evicted" true (Cache.find c (key 2) = None);
  Alcotest.(check bool) "key 3 present" true (Cache.find c (key 3) <> None);
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "size at capacity" 2 s.Cache.size;
  Alcotest.(check int) "inserts counted" 3 s.Cache.inserts

(* --- the service --------------------------------------------------- *)

let config ?(workers = 1) ?(sort = false) ?cache () =
  {
    Serve.workers;
    queue_capacity = 16;
    sort;
    timings = false;
    cache;
  }

let corpus = lazy (Serve.gen_corpus ~seed:11 ~count:16 ())

(* The headline guarantee: byte-identical output for any worker count,
   in both input order and sorted mode. *)
let test_ndomain_determinism () =
  let reference, _ = Serve.run_lines (config ~workers:1 ()) (Lazy.force corpus) in
  List.iter
    (fun workers ->
      let out, stats = Serve.run_lines (config ~workers ()) (Lazy.force corpus) in
      Alcotest.(check (list string))
        (Printf.sprintf "%d workers, input order" workers)
        reference out;
      Alcotest.(check int) "no errors" 0 stats.Serve.errors)
    [ 2; 4; 8 ];
  let sorted1, _ = Serve.run_lines (config ~workers:1 ~sort:true ()) (Lazy.force corpus) in
  List.iter
    (fun workers ->
      let out, _ = Serve.run_lines (config ~workers ~sort:true ()) (Lazy.force corpus) in
      Alcotest.(check (list string))
        (Printf.sprintf "%d workers, sorted" workers)
        sorted1 out)
    [ 4; 8 ]

(* A cached artifact must be byte-identical to a fresh compile: caching
   can change latency, never bytes. *)
let test_cache_hit_byte_equality () =
  let lines = Lazy.force corpus in
  let fresh, _ = Serve.run_lines (config ()) lines in
  let cache = Cache.create ~capacity:64 in
  let cached_cfg = config ~workers:4 ~cache () in
  let first, _ = Serve.run_lines cached_cfg lines in
  let second, stats = Serve.run_lines cached_cfg lines in
  Alcotest.(check (list string)) "cold cached run = uncached run" fresh first;
  Alcotest.(check (list string)) "warm cached run = uncached run" fresh second;
  match stats.Serve.cache_stats with
  | None -> Alcotest.fail "cache stats missing"
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "warm run hits (%d) cover the corpus" s.Cache.hits)
      true
      (s.Cache.hits >= List.length lines)

let member_exn name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" name

let test_malformed_requests_are_structured_errors () =
  let lines =
    [
      "not json at all";
      {|{"id":"good","graph":{"n":4,"edges":[[0,1],[2,3]]}}|};
      {|{"id":"baddev","graph":{"n":3,"edges":[[0,1]]},"device":"enoent"}|};
      {|{"id":"big","graph":{"n":25,"edges":[[0,24]]},"device":"tokyo"}|};
      {|{"id":"badqasm","qasm":"OPENQASM 2.0; garbage"}|};
    ]
  in
  let out, stats = Serve.run_lines (config ~workers:4 ()) lines in
  Alcotest.(check int) "one response per line" (List.length lines)
    (List.length out);
  Alcotest.(check int) "requests counted" (List.length lines)
    stats.Serve.requests;
  Alcotest.(check int) "errors counted" 4 stats.Serve.errors;
  let parsed = List.map (fun l -> Option.get (Json.of_string_opt l)) out in
  let kind_of json =
    match member_exn "error" json with
    | Json.Assoc _ as e -> (
      match Json.member "kind" e with Some (Json.String k) -> k | _ -> "?")
    | _ -> "?"
  in
  (match parsed with
  | [ bad; good; baddev; big; badqasm ] ->
    Alcotest.(check bool) "bad line keeps null id" true
      (member_exn "id" bad = Json.Null);
    Alcotest.(check bool) "bad line located" true
      (member_exn "line" bad = Json.Int 1);
    Alcotest.(check string) "bad line kind" "bad_request" (kind_of bad);
    Alcotest.(check bool) "good line still compiles" true
      (member_exn "ok" good = Json.Bool true);
    Alcotest.(check string) "unknown device kind" "unknown_device"
      (kind_of baddev);
    Alcotest.(check string) "oversized problem kind" "too_many_qubits"
      (kind_of big);
    Alcotest.(check string) "unparseable qasm kind" "bad_request"
      (kind_of badqasm)
  | _ -> Alcotest.fail "unexpected response shape")

let test_gen_corpus_deterministic () =
  let a = Serve.gen_corpus ~seed:5 ~count:12 () in
  let b = Serve.gen_corpus ~seed:5 ~count:12 () in
  let c = Serve.gen_corpus ~seed:6 ~count:12 () in
  Alcotest.(check (list string)) "same seed, same corpus" a b;
  Alcotest.(check bool) "different seed, different corpus" true (a <> c);
  List.iter
    (fun line ->
      match Request.of_line line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "generated corpus line rejected: %s" e)
    a

(* --- cross-domain compile equivalence ------------------------------ *)

(* 50 compiles fanned across 4 domains, every artifact checked against
   the translation-validation oracle.  Small graphs keep the statevector
   stage in play. *)
let test_cross_domain_compile_equivalence () =
  let device = Option.get (Topologies.by_name "tokyo") in
  let strategies =
    [| Compile.Naive; Compile.Greedy_v; Compile.Greedy_e; Compile.Qaim;
       Compile.Ip; Compile.Ic None |]
  in
  let cases =
    Array.init 50 (fun i ->
        let rng = Rng.create (1000 + i) in
        let n = 5 + (i mod 4) in
        let rec draw () =
          let g = Generators.erdos_renyi rng ~n ~p:0.5 in
          if Graph.num_edges g = 0 then draw () else g
        in
        (i, n, draw (), strategies.(i mod Array.length strategies)))
  in
  let reports =
    Pool.map ~workers:4
      (fun (i, _n, g, strategy) ->
        let problem = Problem.of_maxcut g in
        let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
        let options = { Compile.default_options with seed = 100 + i } in
        match Compile.compile_result ~options ~strategy device problem params with
        | Error e -> (i, strategy, Error (Compile.error_to_string e))
        | Ok r ->
          let logical = Ansatz.circuit ~measure:true problem params in
          let report =
            Check.validate ~device ~initial:r.Compile.initial_mapping
              ~final:r.Compile.final_mapping ~swap_count:r.Compile.swap_count
              ~logical r.Compile.circuit
          in
          (i, strategy, Ok report))
      cases
  in
  Array.iter
    (fun (i, strategy, outcome) ->
      match outcome with
      | Error e ->
        Alcotest.failf "case %d (%s) failed to compile: %s" i
          (Compile.strategy_name strategy)
          e
      | Ok report ->
        if not (Check.ok report) then
          Alcotest.failf "case %d (%s) failed validation:\n%s" i
            (Compile.strategy_name strategy)
            (Check.report_to_string report))
    reports

let suite =
  [
    ("pool map matches sequential", `Quick, test_pool_map_matches_sequential);
    ("pool map empty + exceptions", `Quick, test_pool_map_empty_and_exceptions);
    ("pool stream emits in submission order", `Quick, test_pool_stream_ordered);
    ( "pool stream propagates job exceptions",
      `Quick,
      test_pool_stream_propagates_job_exception );
    ( "rng split independent of parent draws",
      `Quick,
      test_split_independent_of_draw_position );
    ("rng split streams distinct", `Quick, test_split_streams_distinct);
    QCheck_alcotest.to_alcotest prop_canonical_hash_invariant;
    ( "canonical hash separates simple cases",
      `Quick,
      test_canonical_hash_separates_simple_cases );
    ("request normalization", `Quick, test_request_normalization);
    ("request rejections", `Quick, test_request_rejections);
    ("cache lru eviction", `Quick, test_cache_lru_eviction);
    ("n-domain determinism", `Slow, test_ndomain_determinism);
    ("cache hits are byte-identical", `Slow, test_cache_hit_byte_equality);
    ( "malformed requests are structured errors",
      `Quick,
      test_malformed_requests_are_structured_errors );
    ("gen_corpus deterministic", `Quick, test_gen_corpus_deterministic);
    ( "cross-domain compile equivalence",
      `Slow,
      test_cross_domain_compile_equivalence );
  ]
