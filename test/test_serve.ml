(* The serving layer: domain pool, artifact cache, request schema, and
   the determinism guarantees the JSONL service advertises. *)

module Pool = Qaoa_serve.Pool
module Cache = Qaoa_serve.Cache
module Request = Qaoa_serve.Request
module Serve = Qaoa_serve.Serve
module Supervise = Qaoa_serve.Supervise
module Persist = Qaoa_serve.Persist
module Daemon = Qaoa_serve.Daemon
module Chaos = Qaoa_journal.Chaos
module Rng = Qaoa_util.Rng
module Graph = Qaoa_graph.Graph
module Generators = Qaoa_graph.Generators
module Json = Qaoa_obs.Json
module Compile = Qaoa_core.Compile
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Topologies = Qaoa_hardware.Topologies
module Check = Qaoa_verify.Check

(* --- pool ---------------------------------------------------------- *)

let test_pool_map_matches_sequential () =
  let input = Array.init 97 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun workers ->
      Alcotest.(check (array int))
        (Printf.sprintf "map with %d workers" workers)
        expected
        (Pool.map ~workers f input))
    [ 1; 2; 4; 8 ]

let test_pool_map_empty_and_exceptions () =
  Alcotest.(check (array int)) "empty input" [||] (Pool.map ~workers:4 succ [||]);
  Alcotest.check_raises "first failure by index re-raised"
    (Failure "item 5") (fun () ->
      ignore
        (Pool.map ~workers:4
           (fun i -> if i >= 5 then failwith (Printf.sprintf "item %d" i) else i)
           (Array.init 64 (fun i -> i))))

let test_pool_stream_ordered () =
  List.iter
    (fun (workers, capacity) ->
      let n = 200 in
      let next = ref 0 in
      let produce () =
        if !next >= n then None
        else begin
          let v = !next in
          incr next;
          Some v
        end
      in
      let seen = ref [] in
      let count =
        Pool.stream ~workers ~queue_capacity:capacity ~produce
          ~consume:(fun seq v -> seen := (seq, v) :: !seen)
          (fun v -> v * 3)
      in
      Alcotest.(check int) "all items processed" n count;
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "submission order (%d workers, queue %d)" workers
           capacity)
        (List.init n (fun i -> (i, i * 3)))
        (List.rev !seen))
    [ (1, 1); (1, 4); (4, 2); (4, 64); (8, 3) ]

let test_pool_stream_propagates_job_exception () =
  let next = ref 0 in
  let produce () =
    if !next >= 40 then None
    else begin
      let v = !next in
      incr next;
      Some v
    end
  in
  Alcotest.check_raises "job exception re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.stream ~workers:4 ~produce
           ~consume:(fun _ _ -> ())
           (fun v -> if v = 17 then failwith "boom" else v)))

(* --- Rng.split ----------------------------------------------------- *)

(* The split stream must not depend on how much the parent has drawn:
   that is what makes work handed to pool workers reproducible when the
   dispatch order changes. *)
let test_split_independent_of_draw_position () =
  let child_draws parent =
    let c = Rng.split parent in
    List.init 8 (fun _ -> Rng.int c 1_000_000)
  in
  let a = Rng.create 1234 in
  let b = Rng.create 1234 in
  ignore (Rng.int b 99);
  ignore (Rng.float b 1.0);
  ignore (Rng.bool b);
  Alcotest.(check (list int))
    "first split agrees regardless of parent draws" (child_draws a)
    (child_draws b);
  (* ... and the second split too, even with more interleaved draws. *)
  ignore (Rng.int b 7);
  Alcotest.(check (list int))
    "second split agrees regardless of parent draws" (child_draws a)
    (child_draws b)

let test_split_streams_distinct () =
  (* 64 parents x 4 splits: no two children may share a stream prefix,
     and none may clone its parent. *)
  let tbl = Hashtbl.create 512 in
  let add key tag =
    match Hashtbl.find_opt tbl key with
    | Some other ->
      Alcotest.failf "stream prefix collision between %s and %s" other tag
    | None -> Hashtbl.replace tbl key tag
  in
  let prefix rng = List.init 4 (fun _ -> Rng.int rng 1_000_000_000) in
  for seed = 0 to 63 do
    let parent = Rng.create seed in
    let children =
      List.init 4 (fun k -> (Printf.sprintf "seed %d split %d" seed k, Rng.split parent))
    in
    add (prefix (Rng.create seed)) (Printf.sprintf "seed %d parent" seed);
    List.iter (fun (tag, c) -> add (prefix c) tag) children
  done

(* --- canonical graph hash ------------------------------------------ *)

let apply_permutation perm g =
  Graph.of_edges (Graph.num_vertices g)
    (List.map (fun (u, v) -> (perm.(u), perm.(v))) (Graph.edges g))

let prop_canonical_hash_invariant =
  QCheck.Test.make ~name:"canonical_hash invariant under relabeling" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 14))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.4 in
      let h = Graph.canonical_hash g in
      (* vertex relabeling *)
      let relabeled = apply_permutation (Rng.permutation rng n) g in
      (* edge-list spelling: shuffled order, flipped orientations *)
      let respelled =
        Graph.of_edges n
          (Rng.shuffle_list rng
             (List.map
                (fun (u, v) -> if Rng.bool rng then (v, u) else (u, v))
                (Graph.edges g)))
      in
      Graph.canonical_hash relabeled = h && Graph.canonical_hash respelled = h)

let test_canonical_hash_separates_simple_cases () =
  let path = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let star = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  let triangle = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  Alcotest.(check bool) "path <> star" true
    (Graph.canonical_hash path <> Graph.canonical_hash star);
  Alcotest.(check bool) "path <> triangle" true
    (Graph.canonical_hash path <> Graph.canonical_hash triangle);
  Alcotest.(check bool) "empty graph hashes consistently" true
    (Graph.canonical_hash (Graph.create 0) = Graph.canonical_hash (Graph.create 0))

(* --- request schema ------------------------------------------------ *)

let parse_ok line =
  match Request.of_line line with
  | Ok r -> r
  | Error e -> Alcotest.failf "expected parse, got error: %s" e

let parse_err line =
  match Request.of_line line with
  | Ok _ -> Alcotest.failf "expected error for %s" line
  | Error e -> e

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_request_normalization () =
  (* Different textual spellings of the same request: edge order,
     orientation, duplicates. *)
  let a = parse_ok {|{"id":"a","graph":{"n":4,"edges":[[0,1],[2,3],[1,2]]}}|} in
  let b = parse_ok {|{"id":"b","graph":{"n":4,"edges":[[2,1],[1,0],[3,2],[0,1]]}}|} in
  Alcotest.(check string) "fingerprints agree" (Request.fingerprint a)
    (Request.fingerprint b);
  Alcotest.(check bool) "cache keys agree" true
    (Request.cache_key a = Request.cache_key b);
  (* round-trip: serialized normal form parses back to the same key *)
  let c = parse_ok (Json.to_string (Request.to_json a)) in
  Alcotest.(check string) "round-trip fingerprint" (Request.fingerprint a)
    (Request.fingerprint c)

let test_request_rejections () =
  let check_err name line sub =
    let e = parse_err line in
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions %S (got %S)" name sub e)
      true
      (contains_substring ~sub e)
  in
  check_err "not json" "nope" "malformed JSON";
  check_err "not an object" "[1,2]" "object";
  check_err "missing id" {|{"graph":{"n":2,"edges":[[0,1]]}}|} "id";
  check_err "unknown field" {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"sede":7}|}
    "unknown field";
  check_err "no source" {|{"id":"a"}|} "graph";
  check_err "both sources"
    {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"qasm":"x"}|} "not both";
  check_err "self loop" {|{"id":"a","graph":{"n":3,"edges":[[1,1]]}}|} "self-loop";
  check_err "edge range" {|{"id":"a","graph":{"n":3,"edges":[[0,7]]}}|} "range";
  check_err "edgeless" {|{"id":"a","graph":{"n":3,"edges":[]}}|} "no edges";
  check_err "bad policy" {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"policy":"x"}|}
    "unknown policy";
  check_err "packing limit scope"
    {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"policy":"qaim","packing_limit":4}|}
    "packing_limit"

(* --- cache --------------------------------------------------------- *)

let key i = { Cache.graph_hash = i; fingerprint = Printf.sprintf "k%d" i }

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  ignore (Cache.store c (key 1) [ ("v", Json.Int 1) ]);
  ignore (Cache.store c (key 2) [ ("v", Json.Int 2) ]);
  ignore (Cache.find c (key 1));
  (* key 2 is now least recently used; inserting key 3 must evict it *)
  ignore (Cache.store c (key 3) [ ("v", Json.Int 3) ]);
  Alcotest.(check bool) "key 1 survives" true (Cache.find c (key 1) <> None);
  Alcotest.(check bool) "key 2 evicted" true (Cache.find c (key 2) = None);
  Alcotest.(check bool) "key 3 present" true (Cache.find c (key 3) <> None);
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "size at capacity" 2 s.Cache.size;
  Alcotest.(check int) "inserts counted" 3 s.Cache.inserts

(* Every missed lookup is classified exactly once when its artifact
   comes back - store (miss) or reject - so the ledger balances. *)
let test_cache_lookup_taxonomy () =
  let c = Cache.create ~max_entry_bytes:64 ~capacity:4 () in
  (* miss -> cacheable store *)
  Alcotest.(check bool) "first lookup misses" true (Cache.find c (key 1) = None);
  Alcotest.(check bool) "stored" true
    (Cache.store c (key 1) [ ("v", Json.Int 1) ] = Cache.Stored);
  (* hit *)
  Alcotest.(check bool) "second lookup hits" true (Cache.find c (key 1) <> None);
  (* miss -> uncacheable artifact *)
  Alcotest.(check bool) "error lookup misses" true (Cache.find c (key 2) = None);
  Cache.reject c;
  (* miss -> oversized artifact, rejected at store *)
  Alcotest.(check bool) "big lookup misses" true (Cache.find c (key 3) = None);
  Alcotest.(check bool) "oversized rejected" true
    (Cache.store c (key 3) [ ("v", Json.String (String.make 200 'x')) ]
    = Cache.Oversized);
  Alcotest.(check bool) "oversized not inserted" true
    (Cache.find c (key 3) = None);
  Cache.reject c;
  (* the find above missed again: classify it *)
  let s = Cache.stats c in
  Alcotest.(check int) "lookups" 5 s.Cache.lookups;
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "rejects" 3 s.Cache.rejects;
  Alcotest.(check int) "taxonomy balances: hits + misses + rejects = lookups"
    s.Cache.lookups
    (s.Cache.hits + s.Cache.misses + s.Cache.rejects)

(* --- the service --------------------------------------------------- *)

let config ?(workers = 1) ?(sort = false) ?cache ?persist ?supervise () =
  {
    Serve.workers;
    queue_capacity = 16;
    sort;
    timings = false;
    cache;
    persist;
    supervise = Option.value supervise ~default:Supervise.default_config;
    drain = None;
    inflight = Atomic.make 0;
  }

let corpus = lazy (Serve.gen_corpus ~seed:11 ~count:16 ())

(* The headline guarantee: byte-identical output for any worker count,
   in both input order and sorted mode. *)
let test_ndomain_determinism () =
  let reference, _ = Serve.run_lines (config ~workers:1 ()) (Lazy.force corpus) in
  List.iter
    (fun workers ->
      let out, stats = Serve.run_lines (config ~workers ()) (Lazy.force corpus) in
      Alcotest.(check (list string))
        (Printf.sprintf "%d workers, input order" workers)
        reference out;
      Alcotest.(check int) "no errors" 0 stats.Serve.errors)
    [ 2; 4; 8 ];
  let sorted1, _ = Serve.run_lines (config ~workers:1 ~sort:true ()) (Lazy.force corpus) in
  List.iter
    (fun workers ->
      let out, _ = Serve.run_lines (config ~workers ~sort:true ()) (Lazy.force corpus) in
      Alcotest.(check (list string))
        (Printf.sprintf "%d workers, sorted" workers)
        sorted1 out)
    [ 4; 8 ]

(* A cached artifact must be byte-identical to a fresh compile: caching
   can change latency, never bytes. *)
let test_cache_hit_byte_equality () =
  let lines = Lazy.force corpus in
  let fresh, _ = Serve.run_lines (config ()) lines in
  let cache = Cache.create ~capacity:64 () in
  let cached_cfg = config ~workers:4 ~cache () in
  let first, _ = Serve.run_lines cached_cfg lines in
  let second, stats = Serve.run_lines cached_cfg lines in
  Alcotest.(check (list string)) "cold cached run = uncached run" fresh first;
  Alcotest.(check (list string)) "warm cached run = uncached run" fresh second;
  match stats.Serve.cache_stats with
  | None -> Alcotest.fail "cache stats missing"
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "warm run hits (%d) cover the corpus" s.Cache.hits)
      true
      (s.Cache.hits >= List.length lines)

let member_exn name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" name

(* "analyze": true attaches the static commutation-DAG record on both
   the compile and the qasm-route paths, its internal depth chain holds,
   and cached hits replay it byte-identically (analyze is part of the
   fingerprint, so with/without variants never alias). *)
let test_analyze_attaches_static_record () =
  let lines =
    [
      {|{"id":"s1","graph":{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]},"policy":"ic","analyze":true}|};
      {|{"id":"s2","qasm":"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];","analyze":true}|};
    ]
  in
  let fresh, _ = Serve.run_lines (config ()) lines in
  Alcotest.(check int) "both served" 2 (List.length fresh);
  List.iter
    (fun line ->
      let json = Json.of_string line in
      let static = member_exn "static" json in
      let geti name =
        match Json.member name static with
        | Some (Json.Int i) -> i
        | _ -> Alcotest.failf "static lacks integer %S" name
      in
      let lb = geti "lower_bound" in
      Alcotest.(check bool) "depth chain holds" true
        (0 < lb
        && lb <= geti "asap_depth"
        && geti "asap_depth" <= geti "measured_depth"))
    fresh;
  let cache = Cache.create ~capacity:16 () in
  let cfg = config ~cache () in
  let first, _ = Serve.run_lines cfg lines in
  let second, stats = Serve.run_lines cfg lines in
  Alcotest.(check (list string)) "cold cached = fresh" fresh first;
  Alcotest.(check (list string)) "warm cached = fresh" fresh second;
  (match stats.Serve.cache_stats with
  | Some s -> Alcotest.(check bool) "warm run hit" true (s.Cache.hits >= 2)
  | None -> Alcotest.fail "cache stats missing");
  (* the same request without analyze keys differently *)
  let strip = {|{"id":"s1","graph":{"n":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]},"policy":"ic"}|} in
  match (Request.of_line (List.nth lines 0), Request.of_line strip) with
  | Ok with_a, Ok without ->
    Alcotest.(check bool) "distinct cache keys" false
      (Request.cache_key with_a = Request.cache_key without)
  | _ -> Alcotest.fail "request parse failed"

let test_malformed_requests_are_structured_errors () =
  let lines =
    [
      "not json at all";
      {|{"id":"good","graph":{"n":4,"edges":[[0,1],[2,3]]}}|};
      {|{"id":"baddev","graph":{"n":3,"edges":[[0,1]]},"device":"enoent"}|};
      {|{"id":"big","graph":{"n":25,"edges":[[0,24]]},"device":"tokyo"}|};
      {|{"id":"badqasm","qasm":"OPENQASM 2.0; garbage"}|};
    ]
  in
  let out, stats = Serve.run_lines (config ~workers:4 ()) lines in
  Alcotest.(check int) "one response per line" (List.length lines)
    (List.length out);
  Alcotest.(check int) "requests counted" (List.length lines)
    stats.Serve.requests;
  Alcotest.(check int) "errors counted" 4 stats.Serve.errors;
  let parsed = List.map (fun l -> Option.get (Json.of_string_opt l)) out in
  let kind_of json =
    match member_exn "error" json with
    | Json.Assoc _ as e -> (
      match Json.member "kind" e with Some (Json.String k) -> k | _ -> "?")
    | _ -> "?"
  in
  (match parsed with
  | [ bad; good; baddev; big; badqasm ] ->
    Alcotest.(check bool) "bad line keeps null id" true
      (member_exn "id" bad = Json.Null);
    Alcotest.(check bool) "bad line located" true
      (member_exn "line" bad = Json.Int 1);
    Alcotest.(check string) "bad line kind" "bad_request" (kind_of bad);
    Alcotest.(check bool) "good line still compiles" true
      (member_exn "ok" good = Json.Bool true);
    Alcotest.(check string) "unknown device kind" "unknown_device"
      (kind_of baddev);
    Alcotest.(check string) "oversized problem kind" "too_many_qubits"
      (kind_of big);
    Alcotest.(check string) "unparseable qasm kind" "bad_request"
      (kind_of badqasm)
  | _ -> Alcotest.fail "unexpected response shape")

let kind_of json =
  match Json.member "error" json with
  | Some (Json.Assoc _ as e) -> (
    match Json.member "kind" e with Some (Json.String k) -> k | _ -> "?")
  | _ -> "?"

let parse_response l = Option.get (Json.of_string_opt l)

(* JSON floats parse to infinity past the double range; a non-finite
   angle must die at the parser as a bad request, not flow into the
   compiler. *)
let test_request_rejects_nonfinite_floats () =
  let e =
    parse_err {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"gamma":1e999}|}
  in
  Alcotest.(check bool)
    (Printf.sprintf "mentions finiteness (got %S)" e)
    true
    (contains_substring ~sub:"finite" e);
  ignore
    (parse_err {|{"id":"a","graph":{"n":2,"edges":[[0,1]]},"beta":-1e999}|});
  let out, stats =
    Serve.run_lines (config ())
      [ {|{"id":"inf","graph":{"n":2,"edges":[[0,1]]},"gamma":1e999}|} ]
  in
  Alcotest.(check int) "structured error" 1 stats.Serve.errors;
  Alcotest.(check string) "bad_request kind" "bad_request"
    (kind_of (parse_response (List.hd out)))

(* Serve-level ledger: every parsed request does one cache lookup, and
   uncacheable outcomes (errors of any kind) settle it as a reject. *)
let test_serve_taxonomy_balances () =
  let lines =
    [
      {|{"id":"good","graph":{"n":4,"edges":[[0,1],[2,3]]}}|};
      "not json at all";
      {|{"id":"baddev","graph":{"n":3,"edges":[[0,1]]},"device":"enoent"}|};
      {|{"id":"good","graph":{"n":4,"edges":[[0,1],[2,3]]}}|};
      {|{"id":"big","graph":{"n":25,"edges":[[0,24]]},"device":"tokyo"}|};
    ]
  in
  let cache = Cache.create ~capacity:16 () in
  let _, stats = Serve.run_lines (config ~cache ()) lines in
  match stats.Serve.cache_stats with
  | None -> Alcotest.fail "cache stats missing"
  | Some s ->
    (* the unparseable line never reaches the cache *)
    Alcotest.(check int) "lookups" 4 s.Cache.lookups;
    Alcotest.(check int) "hits" 1 s.Cache.hits;
    Alcotest.(check int) "misses" 1 s.Cache.misses;
    Alcotest.(check int) "rejects" 2 s.Cache.rejects;
    Alcotest.(check int) "taxonomy balances" s.Cache.lookups
      (s.Cache.hits + s.Cache.misses + s.Cache.rejects)

(* --- supervision --------------------------------------------------- *)

let with_inject hook f =
  Supervise.inject_hook := Some hook;
  Fun.protect ~finally:(fun () -> Supervise.inject_hook := None) f

(* A transient worker fault is retried with a reseeded attempt and
   served (flagged, uncached); a permanent one is contained as a
   structured internal error.  Either way the other requests' bytes
   are untouched. *)
let test_retry_and_containment () =
  let lines = Lazy.force corpus in
  let reference, _ = Serve.run_lines (config ()) lines in
  let flaky_id = "req-0003" and dead_id = "req-0007" in
  let out, stats =
    with_inject
      (fun ~id ~attempt ->
        if id = flaky_id && attempt = 0 then failwith "transient fault";
        if id = dead_id then failwith "permanent fault")
      (fun () ->
        let cache = Cache.create ~capacity:64 () in
        Serve.run_lines (config ~cache ()) lines)
  in
  Alcotest.(check int) "one response per request" (List.length lines)
    (List.length out);
  Alcotest.(check int) "only the dead request errors" 1 stats.Serve.errors;
  List.iteri
    (fun i (ref_line, line) ->
      let json = parse_response line in
      let id =
        match Json.member "id" json with Some (Json.String s) -> s | _ -> "?"
      in
      if id = flaky_id then begin
        Alcotest.(check bool) "flaky request still succeeds" true
          (Json.member "ok" json = Some (Json.Bool true));
        Alcotest.(check bool) "retry is flagged" true
          (Json.member "attempts" json = Some (Json.Int 2))
      end
      else if id = dead_id then
        Alcotest.(check string) "permanent fault contained as internal"
          "internal" (kind_of json)
      else
        Alcotest.(check string)
          (Printf.sprintf "request %d bytes unaffected" i)
          ref_line line)
    (List.combine reference out)

(* vic needs calibration and tokyo ships none: a deterministic compile
   failure.  After [breaker_threshold] consecutive failures the
   (tokyo, vic) pair is quarantined and later requests degrade to the
   fallback chain instead of failing hard. *)
let test_breaker_quarantine_and_degrade () =
  let vic i =
    Printf.sprintf
      {|{"id":"vic-%d","graph":{"n":4,"edges":[[0,1],[1,2],[2,3]]},"policy":"vic","device":"tokyo","seed":%d}|}
      i i
  in
  let lines = List.init 6 vic in
  let supervise =
    {
      Supervise.default_config with
      Supervise.breaker_threshold = 2;
      breaker_probe_every = 100;
    }
  in
  let out, stats = Serve.run_lines (config ~supervise ()) lines in
  let parsed = List.map parse_response out in
  let nth i = List.nth parsed i in
  Alcotest.(check string) "first failure surfaces" "missing_calibration"
    (kind_of (nth 0));
  Alcotest.(check string) "second failure opens the breaker"
    "missing_calibration" (kind_of (nth 1));
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "request %d degrades to a fallback policy" i)
        true
        (Json.member "ok" (nth i) = Some (Json.Bool true)
        && Json.member "degraded" (nth i) = Some (Json.Bool true)
        && Json.member "requested_policy" (nth i)
           = Some (Json.String "VIC")))
    [ 2; 3; 4; 5 ];
  Alcotest.(check int) "only the pre-open requests error" 2 stats.Serve.errors

(* --- persistence --------------------------------------------------- *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "qaoa-test-persist-%d-%d" (Unix.getpid ()) !counter)
    in
    dir

let rm_dir dir =
  (try Sys.remove (Filename.concat dir Persist.default_filename)
   with Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* Kill-and-restart warmth: a journaled run, then a fresh process
   image (new cache) resuming the journal, must answer the whole
   corpus byte-identically with zero recompiles. *)
let test_persist_restart_byte_identical_zero_recompiles () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_dir dir) @@ fun () ->
  let lines = Lazy.force corpus in
  let c1 = Cache.create ~capacity:64 () in
  let p1 = Persist.open_ ~resume:false ~dir c1 in
  let first, _ = Serve.run_lines (config ~cache:c1 ~persist:p1 ()) lines in
  Persist.finish p1 c1;
  (* restart: nothing survives but the journal *)
  let c2 = Cache.create ~capacity:64 () in
  let p2 = Persist.open_ ~resume:true ~dir c2 in
  let s = Persist.stats p2 in
  Alcotest.(check int) "every artifact reloaded" (List.length lines)
    s.Persist.s_loaded;
  let second, stats = Serve.run_lines (config ~cache:c2 ~persist:p2 ()) lines in
  Persist.finish p2 c2;
  Alcotest.(check (list string)) "responses byte-identical across restart"
    first second;
  match stats.Serve.cache_stats with
  | None -> Alcotest.fail "cache stats missing"
  | Some s ->
    Alcotest.(check int) "zero recompiles" 0 s.Cache.misses;
    Alcotest.(check int) "warm from disk" (List.length lines) s.Cache.hits

(* A corrupt mid-file record is dropped (and recompiled on demand); a
   torn trailing record is truncated off.  Neither is ever served. *)
let test_persist_corruption_recovery () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_dir dir) @@ fun () ->
  let lines = Lazy.force corpus in
  let c1 = Cache.create ~capacity:64 () in
  let p1 = Persist.open_ ~resume:false ~dir c1 in
  let first, _ = Serve.run_lines (config ~cache:c1 ~persist:p1 ()) lines in
  let file = Persist.path p1 in
  Persist.close p1;
  (* flip the third record's checksum and append a torn half-record *)
  let ic = open_in_bin file in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let records = String.split_on_char '\n' content in
  let mangled =
    List.mapi
      (fun i r ->
        if i = 2 && String.length r > 0 then
          (if r.[0] = '0' then "1" else "0") ^ String.sub r 1 (String.length r - 1)
        else r)
      records
    |> String.concat "\n"
  in
  let oc = open_out_bin file in
  output_string oc (mangled ^ {|deadbeef {"graph_hash":1,"fing|});
  close_out oc;
  let c2 = Cache.create ~capacity:64 () in
  let p2 = Persist.open_ ~resume:true ~dir c2 in
  let s = Persist.stats p2 in
  Alcotest.(check int) "corrupt record dropped" 1 s.Persist.s_dropped;
  Alcotest.(check int) "torn tail truncated" 1 s.Persist.s_torn_truncated;
  Alcotest.(check int) "the rest reloaded"
    (List.length lines - 1)
    s.Persist.s_loaded;
  let second, stats = Serve.run_lines (config ~cache:c2 ~persist:p2 ()) lines in
  Persist.finish p2 c2;
  Alcotest.(check (list string)) "responses byte-identical after corruption"
    first second;
  match stats.Serve.cache_stats with
  | None -> Alcotest.fail "cache stats missing"
  | Some cs ->
    Alcotest.(check int) "only the dropped record recompiles" 1
      cs.Cache.misses

(* Chaos under serve: a simulated crash on the Nth journal append must
   propagate out of the serving loop (it is a process death, not a
   request failure), and a resumed run must reproduce the reference
   bytes, answering every journaled artifact from the warm cache. *)
let test_chaos_crash_under_serve () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_dir dir) @@ fun () ->
  let lines = Lazy.force corpus in
  let reference, _ = Serve.run_lines (config ()) lines in
  let c1 = Cache.create ~capacity:64 () in
  let p1 = Persist.open_ ~resume:false ~dir c1 in
  Chaos.set_plan
    (Some { Chaos.action = Chaos.Crash_after 5; mode = Chaos.Raise });
  (match Serve.run_lines (config ~cache:c1 ~persist:p1 ()) lines with
  | _ -> Alcotest.fail "injected crash must propagate, not be contained"
  | exception Chaos.Injected _ -> ());
  Chaos.set_plan None;
  Persist.close p1;
  let c2 = Cache.create ~capacity:64 () in
  let p2 = Persist.open_ ~resume:true ~dir c2 in
  let s = Persist.stats p2 in
  Alcotest.(check bool)
    (Printf.sprintf "the crash-surviving prefix reloads (%d records)"
       s.Persist.s_loaded)
    true
    (s.Persist.s_loaded >= 5);
  let second, stats = Serve.run_lines (config ~cache:c2 ~persist:p2 ()) lines in
  Persist.finish p2 c2;
  Alcotest.(check (list string)) "resumed run reproduces reference bytes"
    reference second;
  match stats.Serve.cache_stats with
  | None -> Alcotest.fail "cache stats missing"
  | Some cs ->
    Alcotest.(check int) "journaled artifacts never recompile"
      s.Persist.s_loaded cs.Cache.hits;
    Alcotest.(check int) "the rest recompile once"
      (List.length lines - s.Persist.s_loaded)
      cs.Cache.misses

(* --- daemon -------------------------------------------------------- *)

(* Round-trip through the Unix-socket daemon: same bytes as the batch
   path, responses in request order, graceful drain on the flag. *)
let test_daemon_roundtrip () =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "qaoa-test-daemon-%d.sock" (Unix.getpid ()))
  in
  let lines = List.filteri (fun i _ -> i < 6) (Lazy.force corpus) in
  let reference, _ = Serve.run_lines (config ()) lines in
  let drain = Atomic.make 0 in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run
          ~on_ready:(fun () -> Atomic.set ready true)
          (config ~cache:(Cache.create ~capacity:64 ()) ())
          ~socket_path:sock ~drain)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  if not (Atomic.get ready) then Alcotest.fail "daemon never became ready";
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  let payload = String.concat "\n" lines ^ "\n" in
  let rec wr off len =
    if len > 0 then begin
      let n = Unix.write_substring fd payload off len in
      wr (off + n) (len - n)
    end
  in
  wr 0 (String.length payload);
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let buf = Buffer.create 4096 in
  let bytes = Bytes.create 4096 in
  let rec rd () =
    match Unix.read fd bytes 0 4096 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf bytes 0 n;
      rd ()
  in
  rd ();
  Unix.close fd;
  Atomic.set drain 143;
  let stats = Domain.join daemon in
  let out =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun s -> s <> "")
  in
  Alcotest.(check (list string)) "daemon bytes = batch bytes" reference out;
  Alcotest.(check int) "all requests counted" (List.length lines)
    stats.Serve.requests;
  Alcotest.(check bool) "socket file removed on drain" true
    (not (Sys.file_exists sock))

let test_gen_corpus_deterministic () =
  let a = Serve.gen_corpus ~seed:5 ~count:12 () in
  let b = Serve.gen_corpus ~seed:5 ~count:12 () in
  let c = Serve.gen_corpus ~seed:6 ~count:12 () in
  Alcotest.(check (list string)) "same seed, same corpus" a b;
  Alcotest.(check bool) "different seed, different corpus" true (a <> c);
  List.iter
    (fun line ->
      match Request.of_line line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "generated corpus line rejected: %s" e)
    a

(* --- daemon client ------------------------------------------------- *)

(* Daemon.Client against a live daemon: framed request/reply, the ping
   and stats control verbs over the wire, and the connect deadline. *)
let test_daemon_client_roundtrip () =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "qaoa-test-client-%d.sock" (Unix.getpid ()))
  in
  let lines = List.filteri (fun i _ -> i < 3) (Lazy.force corpus) in
  let reference, _ = Serve.run_lines (config ()) lines in
  let drain = Atomic.make 0 in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run
          ~on_ready:(fun () -> Atomic.set ready true)
          (config ~cache:(Cache.create ~capacity:64 ()) ())
          ~socket_path:sock ~drain)
  in
  Fun.protect ~finally:(fun () ->
      Atomic.compare_and_set drain 0 143 |> ignore;
      ignore (Domain.join daemon))
  @@ fun () ->
  let c = Daemon.Client.connect ~timeout_s:10.0 sock in
  Alcotest.(check (option string))
    "ping pongs"
    (Some {|{"id":null,"ok":true,"op":"ping"}|})
    (Daemon.Client.request c {|{"op":"ping"}|});
  List.iteri
    (fun i line ->
      Alcotest.(check (option string))
        (Printf.sprintf "request %d matches the batch bytes" i)
        (Some (List.nth reference i))
        (Daemon.Client.request c line))
    lines;
  (match Daemon.Client.request c {|{"op":"stats"}|} with
  | None -> Alcotest.fail "no stats reply"
  | Some reply -> (
    match Json.of_string_opt reply with
    | Some (Json.Assoc fields) -> (
      Alcotest.(check bool)
        "stats ok" true
        (List.assoc_opt "ok" fields = Some (Json.Bool true));
      Alcotest.(check bool)
        "inflight counts the stats request itself" true
        (List.assoc_opt "inflight" fields = Some (Json.Int 1));
      match List.assoc_opt "cache" fields with
      | Some (Json.Assoc cache) ->
        let n k =
          match List.assoc_opt k cache with
          | Some (Json.Int v) -> v
          | _ -> Alcotest.failf "stats cache missing %s" k
        in
        Alcotest.(check int) "taxonomy balances over the wire" (n "lookups")
          (n "hits" + n "misses" + n "rejects")
      | _ -> Alcotest.fail "stats reply has no cache object")
    | _ -> Alcotest.fail "stats reply is not a json object"));
  Daemon.Client.close c;
  (* nothing listens here: the deadline must fire, not hang *)
  match
    Daemon.Client.connect ~timeout_s:0.2
      (Filename.concat (Filename.get_temp_dir_name ()) "qaoa-no-such.sock")
  with
  | _ -> Alcotest.fail "connect to a dead path should time out"
  | exception Daemon.Client.Timeout _ -> ()

(* --- shard supervisor ---------------------------------------------- *)

module Shard = Qaoa_serve.Shard

(* The pure supervision arithmetic: capped exponential backoff, the
   flap-detector window, the re-adoption streak, hash routing and the
   rerouted-metadata splice. *)
let test_shard_supervision_arithmetic () =
  let d attempt = Shard.Backoff.delay_s ~base_s:0.05 ~cap_s:1.0 ~attempt in
  Alcotest.(check (float 1e-9)) "first retry at base" 0.05 (d 1);
  Alcotest.(check (float 1e-9)) "doubles" 0.1 (d 2);
  Alcotest.(check (float 1e-9)) "keeps doubling" 0.4 (d 4);
  Alcotest.(check (float 1e-9)) "caps" 1.0 (d 6);
  Alcotest.(check (float 1e-9)) "stays capped" 1.0 (d 30);
  let f = Shard.Flap.create ~window_s:10.0 ~threshold:3 in
  Shard.Flap.note f ~now:100.0;
  Shard.Flap.note f ~now:104.0;
  Alcotest.(check bool) "two in window: calm" false
    (Shard.Flap.flapping f ~now:104.0);
  Shard.Flap.note f ~now:108.0;
  Alcotest.(check bool) "three in window: flapping" true
    (Shard.Flap.flapping f ~now:108.0);
  Alcotest.(check int) "oldest restart ages out" 2
    (Shard.Flap.count f ~now:113.9);
  Alcotest.(check bool) "pruned window: calm again" false
    (Shard.Flap.flapping f ~now:113.9);
  Shard.Flap.note f ~now:113.9;
  Alcotest.(check bool) "fresh restart re-trips it" true
    (Shard.Flap.flapping f ~now:113.9);
  let s = Shard.Streak.create ~need:3 in
  Shard.Streak.hit s;
  Shard.Streak.hit s;
  Alcotest.(check bool) "two probes: not yet" false (Shard.Streak.reached s);
  Shard.Streak.hit s;
  Alcotest.(check bool) "third probe re-adopts" true (Shard.Streak.reached s);
  Shard.Streak.miss s;
  Shard.Streak.hit s;
  Alcotest.(check bool) "a miss resets the run" false (Shard.Streak.reached s);
  Alcotest.(check int) "owner" 3 (Shard.owner ~shards:4 7);
  Alcotest.(check int) "owner of a negative hash" 1 (Shard.owner ~shards:4 (-7));
  Alcotest.(check (option int))
    "route lands on the owner" (Some 3)
    (Shard.route ~shards:4 ~alive:(fun _ -> true) 7);
  Alcotest.(check (option int))
    "route walks past dead slots, wrapping" (Some 2)
    (Shard.route ~shards:4 ~alive:(fun i -> i = 2) 7);
  Alcotest.(check (option int))
    "route with no live slot" None
    (Shard.route ~shards:4 ~alive:(fun _ -> false) 7);
  Alcotest.(check string)
    "rerouted splice"
    {|{"id":"x","rerouted":true}|}
    (Shard.mark_rerouted {|{"id":"x"}|});
  Alcotest.(check string)
    "non-object lines pass through" "not json"
    (Shard.mark_rerouted "not json")

(* The control verbs through the ordinary serving path: ping is the
   canonical pong, stats balances the taxonomy, junk ops and extra
   fields are structured bad_requests. *)
let test_control_verbs () =
  let lines =
    [
      {|{"op":"ping"}|};
      List.nth (Lazy.force corpus) 0;
      {|{"op":"stats"}|};
      {|{"op":"reboot"}|};
      {|{"op":"ping","x":1}|};
    ]
  in
  let out, stats =
    Serve.run_lines (config ~cache:(Cache.create ~capacity:16 ()) ()) lines
  in
  Alcotest.(check int) "every line answered" 5 (List.length out);
  Alcotest.(check string)
    "canonical pong"
    {|{"id":null,"ok":true,"op":"ping"}|}
    (List.nth out 0);
  (match Json.of_string_opt (List.nth out 2) with
  | Some (Json.Assoc fields) -> (
    Alcotest.(check bool)
      "stats op echoed" true
      (List.assoc_opt "op" fields = Some (Json.String "stats"));
    match List.assoc_opt "cache" fields with
    | Some (Json.Assoc cache) ->
      let n k =
        match List.assoc_opt k cache with
        | Some (Json.Int v) -> v
        | _ -> Alcotest.failf "stats cache missing %s" k
      in
      Alcotest.(check int) "one lookup so far" 1 (n "lookups");
      Alcotest.(check int) "taxonomy balances" (n "lookups")
        (n "hits" + n "misses" + n "rejects")
    | _ -> Alcotest.fail "stats without a cache object")
  | _ -> Alcotest.fail "stats reply is not a json object");
  let error_kind line =
    match Json.of_string_opt line with
    | Some (Json.Assoc fields) -> (
      match List.assoc_opt "error" fields with
      | Some (Json.Assoc e) -> (
        match List.assoc_opt "kind" e with
        | Some (Json.String k) -> k
        | _ -> "?")
      | _ -> "?")
    | _ -> "?"
  in
  Alcotest.(check string) "unknown op rejected" "bad_request"
    (error_kind (List.nth out 3));
  Alcotest.(check string) "extra control fields rejected" "bad_request"
    (error_kind (List.nth out 4));
  Alcotest.(check int) "two structured errors" 2 stats.Serve.errors

(* --- cross-domain compile equivalence ------------------------------ *)

(* 50 compiles fanned across 4 domains, every artifact checked against
   the translation-validation oracle.  Small graphs keep the statevector
   stage in play. *)
let test_cross_domain_compile_equivalence () =
  let device = Option.get (Topologies.by_name "tokyo") in
  let strategies =
    [| Compile.Naive; Compile.Greedy_v; Compile.Greedy_e; Compile.Qaim;
       Compile.Ip; Compile.Ic None |]
  in
  let cases =
    Array.init 50 (fun i ->
        let rng = Rng.create (1000 + i) in
        let n = 5 + (i mod 4) in
        let rec draw () =
          let g = Generators.erdos_renyi rng ~n ~p:0.5 in
          if Graph.num_edges g = 0 then draw () else g
        in
        (i, n, draw (), strategies.(i mod Array.length strategies)))
  in
  let reports =
    Pool.map ~workers:4
      (fun (i, _n, g, strategy) ->
        let problem = Problem.of_maxcut g in
        let params = Ansatz.params_p1 ~gamma:0.7 ~beta:0.4 in
        let options = { Compile.default_options with seed = 100 + i } in
        match Compile.compile_result ~options ~strategy device problem params with
        | Error e -> (i, strategy, Error (Compile.error_to_string e))
        | Ok r ->
          let logical = Ansatz.circuit ~measure:true problem params in
          let report =
            Check.validate ~device ~initial:r.Compile.initial_mapping
              ~final:r.Compile.final_mapping ~swap_count:r.Compile.swap_count
              ~logical r.Compile.circuit
          in
          (i, strategy, Ok report))
      cases
  in
  Array.iter
    (fun (i, strategy, outcome) ->
      match outcome with
      | Error e ->
        Alcotest.failf "case %d (%s) failed to compile: %s" i
          (Compile.strategy_name strategy)
          e
      | Ok report ->
        if not (Check.ok report) then
          Alcotest.failf "case %d (%s) failed validation:\n%s" i
            (Compile.strategy_name strategy)
            (Check.report_to_string report))
    reports

let suite =
  [
    ("pool map matches sequential", `Quick, test_pool_map_matches_sequential);
    ("pool map empty + exceptions", `Quick, test_pool_map_empty_and_exceptions);
    ("pool stream emits in submission order", `Quick, test_pool_stream_ordered);
    ( "pool stream propagates job exceptions",
      `Quick,
      test_pool_stream_propagates_job_exception );
    ( "rng split independent of parent draws",
      `Quick,
      test_split_independent_of_draw_position );
    ("rng split streams distinct", `Quick, test_split_streams_distinct);
    QCheck_alcotest.to_alcotest prop_canonical_hash_invariant;
    ( "canonical hash separates simple cases",
      `Quick,
      test_canonical_hash_separates_simple_cases );
    ("request normalization", `Quick, test_request_normalization);
    ("request rejections", `Quick, test_request_rejections);
    ("cache lru eviction", `Quick, test_cache_lru_eviction);
    ("cache lookup taxonomy balances", `Quick, test_cache_lookup_taxonomy);
    ("n-domain determinism", `Slow, test_ndomain_determinism);
    ("cache hits are byte-identical", `Slow, test_cache_hit_byte_equality);
    ( "analyze attaches a cached static record",
      `Quick,
      test_analyze_attaches_static_record );
    ( "malformed requests are structured errors",
      `Quick,
      test_malformed_requests_are_structured_errors );
    ( "non-finite floats rejected at parse",
      `Quick,
      test_request_rejects_nonfinite_floats );
    ("serve-level taxonomy balances", `Quick, test_serve_taxonomy_balances);
    ("retry and containment", `Slow, test_retry_and_containment);
    ( "breaker quarantines and degrades",
      `Quick,
      test_breaker_quarantine_and_degrade );
    ( "persisted cache restarts byte-identical",
      `Slow,
      test_persist_restart_byte_identical_zero_recompiles );
    ("persist corruption recovery", `Slow, test_persist_corruption_recovery);
    ("chaos crash under serve", `Slow, test_chaos_crash_under_serve);
    ("daemon socket roundtrip", `Slow, test_daemon_roundtrip);
    ("daemon client roundtrip", `Slow, test_daemon_client_roundtrip);
    ( "shard supervision arithmetic",
      `Quick,
      test_shard_supervision_arithmetic );
    ("control verbs", `Quick, test_control_verbs);
    (* Fleet tests that fork live in test/fleet/ (their own executable):
       OCaml forbids Unix.fork in any process that ever created a
       domain, and this binary's pool tests create domains. *)
    ("gen_corpus deterministic", `Quick, test_gen_corpus_deterministic);
    ( "cross-domain compile equivalence",
      `Slow,
      test_cross_domain_compile_equivalence );
  ]
