(* qaoa-verify: translation validation of the compilation pipeline.

   Two modes:
     qaoa-verify check --device tokyo --strategy ic --nodes 12 --kind er:0.4
       compile one instance (or --all-strategies) and validate the routed
       circuit against its logical source;
     qaoa-verify fuzz --cases 100 --seed 7
       seeded differential sweep over random problems x policies x
       topologies, with shrinking of any failing case.

   Exit status 0 = everything validated, 1 = discrepancies found. *)

module Compile = Qaoa_core.Compile
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Check = Qaoa_verify.Check
module Fuzz = Qaoa_verify.Fuzz
module Differential = Qaoa_experiments.Differential
module Workload = Qaoa_experiments.Workload
module Topologies = Qaoa_hardware.Topologies
module Device = Qaoa_hardware.Device
module Rng = Qaoa_util.Rng
open Cmdliner

let kind_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "er"; p ] -> (
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (Workload.Erdos_renyi p)
      | _ -> Error (`Msg "er:<p> expects 0 <= p <= 1"))
    | [ "regular"; d ] -> (
      match int_of_string_opt d with
      | Some d when d >= 1 -> Ok (Workload.Regular d)
      | _ -> Error (`Msg "regular:<d> expects d >= 1"))
    | [ "ba"; m ] -> (
      match int_of_string_opt m with
      | Some m when m >= 1 -> Ok (Workload.Barabasi_albert m)
      | _ -> Error (`Msg "ba:<m> expects m >= 1"))
    | _ -> Error (`Msg "expected er:<p>, regular:<d> or ba:<m>")
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Workload.kind_name k))

let strategy_conv =
  Arg.conv
    ( (fun s ->
        match Compile.strategy_of_string s with
        | Some st -> Ok st
        | None ->
          Error (`Msg "expected naive | greedyv | greedye | qaim | ip | ic | vic")),
      fun ppf s -> Format.pp_print_string ppf (Compile.strategy_name s) )

(* Malformed input or a structured compile failure is a one-line
   diagnostic and exit 2, never a backtrace (exit 1 is reserved for
   genuine verification discrepancies). *)
let guard f =
  try f () with
  | Compile.Error e ->
    Printf.eprintf "qaoa-verify: %s\n" (Compile.error_to_string e);
    2
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-verify: %s\n" msg;
    2

(* ---------------- check ---------------- *)

let oracle_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "auto" -> Ok Check.Auto
        | "statevector" -> Ok Check.Statevector_only
        | "phase-poly" | "phase_poly" -> Ok Check.Phase_poly_only
        | _ -> Error (`Msg "expected auto | statevector | phase-poly")),
      fun ppf o ->
        Format.pp_print_string ppf
          (match o with
          | Check.Auto -> "auto"
          | Check.Statevector_only -> "statevector"
          | Check.Phase_poly_only -> "phase-poly") )

let run_check () topology strategies all nodes kind seed p max_semantic oracle =
  guard @@ fun () ->
  let device = Differential.device_of_topology topology in
  let strategies =
    if all then Differential.default_strategies else strategies
  in
  let rng = Rng.create seed in
  let problem = List.hd (Workload.problems rng kind ~n:nodes ~count:1) in
  let params = { Ansatz.gammas = Array.make p 0.7; betas = Array.make p 0.4 } in
  let logical = Ansatz.circuit ~measure:true problem params in
  let options = { Compile.default_options with seed } in
  let check_options =
    {
      (Check.default_options ()) with
      Check.max_semantic_qubits = max_semantic;
      oracle;
    }
  in
  let failures = ref 0 in
  List.iter
    (fun strategy ->
      let r = Compile.compile ~options ~strategy device problem params in
      let report =
        Check.validate ~options:check_options ~device
          ~initial:r.Compile.initial_mapping ~final:r.Compile.final_mapping
          ~swap_count:r.Compile.swap_count ~logical r.Compile.circuit
      in
      if not (Check.ok report) then incr failures;
      Printf.printf "%-16s %s\n" (Compile.strategy_name strategy)
        (Check.report_to_string report))
    strategies;
  if !failures = 0 then 0 else 1

let check_cmd =
  let topology =
    Arg.(
      value & opt string "tokyo"
      & info [ "device" ] ~docv:"NAME"
          ~doc:"Target device (tokyo, melbourne, grid6x6, linear<N>, ring<N>).")
  in
  let strategies =
    Arg.(
      value
      & opt_all strategy_conv [ Compile.Ic None ]
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:"Strategy to validate (repeatable).")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all-strategies" ] ~doc:"Validate all seven policies.")
  in
  let nodes =
    Arg.(value & opt int 12 & info [ "nodes"; "n" ] ~doc:"Problem graph size.")
  in
  let kind =
    Arg.(
      value
      & opt kind_conv (Workload.Regular 3)
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Graph family: er:<p>, regular:<d> or ba:<m>.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let p = Arg.(value & opt int 1 & info [ "p" ] ~doc:"QAOA levels.") in
  let max_semantic =
    Arg.(
      value
      & opt int (Check.default_options ()).Check.max_semantic_qubits
      & info [ "max-semantic-qubits" ]
          ~doc:"Statevector-equivalence limit; larger registers fall back \
                to the phase-polynomial oracle (also settable via \
                QAOA_MAX_SEMANTIC_QUBITS).")
  in
  let oracle =
    Arg.(
      value
      & opt oracle_conv Check.Auto
      & info [ "oracle" ] ~docv:"ORACLE"
          ~doc:"Semantic oracle: auto (statevector within the qubit \
                limit, phase-poly past it), statevector, or phase-poly.")
  in
  let term =
    Term.(
      const run_check $ Qaoa_cli.setup $ topology $ strategies $ all $ nodes
      $ kind $ seed $ p
      $ max_semantic $ oracle)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Validate one compiled instance end-to-end")
    term

(* ---------------- fuzz ---------------- *)

let run_fuzz () cases_count seed topologies strategies max_nodes max_semantic =
  guard @@ fun () ->
  let topologies =
    if topologies = [] then Differential.default_topologies else topologies
  in
  let strategies =
    if strategies = [] then Differential.default_strategies else strategies
  in
  let stats =
    Differential.fuzz ~seed ~count:cases_count ~topologies ~strategies
      ~max_nodes ~max_semantic_qubits:max_semantic ()
  in
  Format.printf "%a@."
    (Fuzz.pp_stats ~case_repro:Differential.repro
       ~case_name:Differential.case_name)
    stats;
  if stats.Fuzz.failures = [] then 0 else 1

let fuzz_cmd =
  let cases_count =
    Arg.(
      value & opt int 100
      & info [ "cases" ]
          ~doc:"Seeded graph/topology instances (each runs every strategy).")
  in
  let seed = Arg.(value & opt int 2026 & info [ "seed" ] ~doc:"Sweep seed.") in
  let topologies =
    Arg.(
      value
      & opt_all string []
      & info [ "topology" ] ~docv:"NAME"
          ~doc:"Topology to sweep (repeatable; default the five bundled \
                ones).")
  in
  let strategies =
    Arg.(
      value
      & opt_all strategy_conv []
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:"Strategy to sweep (repeatable; default all seven).")
  in
  let max_nodes =
    Arg.(value & opt int 12 & info [ "max-nodes" ] ~doc:"Largest graph size.")
  in
  let max_semantic =
    Arg.(
      value
      & opt int (Check.default_options ()).Check.max_semantic_qubits
      & info [ "max-semantic-qubits" ]
          ~doc:"Statevector-equivalence limit per case.")
  in
  let term =
    Term.(
      const run_fuzz $ Qaoa_cli.setup $ cases_count $ seed $ topologies
      $ strategies
      $ max_nodes $ max_semantic)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: problems x policies x topologies")
    term

let cmd =
  Cmd.group
    (Cmd.info "qaoa-verify" ~version:"1.0.0"
       ~doc:
         "Translation validation + differential fuzzing of the QAOA \
          compilation pipeline")
    [ check_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' ~term_err:2 cmd)
