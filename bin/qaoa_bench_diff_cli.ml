(* qaoa-bench-diff: compare two BENCH_results.json files (as written by
   bench/main.exe) and fail on hot-path regressions.

   Examples:
     qaoa-bench-diff bench_results/BASELINE.json bench_results/BENCH_results.json
     qaoa-bench-diff BASELINE.json BENCH_results.json --threshold 0.5 \
       --gate kernel.fig12-ic-unlimited-grid36=2.0 --json

   Exit status: 0 = no gated regression, 1 = regression(s), 2 = bad
   input. *)

module Json = Qaoa_obs.Json
module Bench_diff = Qaoa_obs.Bench_diff
open Cmdliner

let read_doc path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string_opt contents with
  | Some doc -> doc
  | None -> failwith (path ^ ": not valid JSON")

let gate_conv =
  Arg.conv
    ( (fun s ->
        match String.index_opt s '=' with
        | Some i -> (
          let metric = String.sub s 0 i in
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt v with
          | Some t when t >= 0.0 -> Ok (metric, t)
          | _ -> Error (`Msg "expected METRIC=REL with REL >= 0"))
        | None -> Error (`Msg "expected METRIC=REL (e.g. kernel.ring8-ic=0.5)")),
      fun ppf (m, t) -> Format.fprintf ppf "%s=%g" m t )

let run baseline_path current_path threshold min_ms gates json =
  try
    let report =
      Bench_diff.compare_docs ~default_threshold:threshold ~min_ms
        ~overrides:gates ~baseline:(read_doc baseline_path)
        ~current:(read_doc current_path) ()
    in
    if json then print_string (Json.to_string (Bench_diff.to_json report) ^ "\n")
    else print_string (Bench_diff.to_text report);
    if Bench_diff.regressed report then 1 else 0
  with Sys_error msg | Failure msg ->
    Printf.eprintf "qaoa-bench-diff: %s\n" msg;
    2

let cmd =
  let baseline =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline BENCH_results.json.")
  in
  let current =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current BENCH_results.json.")
  in
  let threshold =
    Arg.(
      value & opt float 1.0
      & info [ "threshold" ] ~docv:"REL"
          ~doc:
            "Default maximum allowed relative slowdown per kernel (1.0 = a \
             2x slowdown fails).")
  in
  let min_ms =
    Arg.(
      value & opt float 0.01
      & info [ "min-ms" ] ~docv:"MS"
          ~doc:
            "Kernels with a baseline below this are reported but not gated \
             (timer noise floor).")
  in
  let gates =
    Arg.(
      value
      & opt_all gate_conv []
      & info [ "gate" ] ~docv:"METRIC=REL"
          ~doc:
            "Per-metric threshold override (repeatable), e.g. \
             $(b,kernel.ring8-ic=0.5) or $(b,resilience.exhausted=0).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the delta report as a JSON document.")
  in
  Cmd.v
    (Cmd.info "qaoa-bench-diff" ~version:"1.0.0"
       ~doc:
         "Compare two bench-harness result files against per-metric \
          regression thresholds")
    Term.(const run $ baseline $ current $ threshold $ min_ms $ gates $ json)

let () = exit (Cmd.eval' ~term_err:2 cmd)
