(* qaoa-lint: static circuit lints over the gate IR, no simulator.

   Examples:
     qaoa-lint circuit.qasm --device tokyo
     qaoa-lint circuit.qasm --max-depth 120 --deny WARN
     qaoa-lint --demo --json

   Exit status: 0 = clean, 2 = at least one ERROR finding, 1 = a finding
   at or above --deny (default ERROR, so WARN/INFO findings alone exit 0
   unless denied).  Malformed input exits 3 so it can never be confused
   with a lint verdict. *)

module Lint = Qaoa_analysis.Lint
module Gate = Qaoa_circuit.Gate
module Circuit = Qaoa_circuit.Circuit
module Qasm = Qaoa_circuit.Qasm
module Topologies = Qaoa_hardware.Topologies
module Device = Qaoa_hardware.Device
module Json = Qaoa_obs.Json
open Cmdliner

let device_conv =
  Arg.conv
    ( (fun s ->
        match Topologies.by_name s with
        | Some d -> Ok d
        | None ->
          Error
            (`Msg
               ("unknown device; known: "
               ^ String.concat ", " Topologies.known_names))),
      fun ppf (d : Device.t) -> Format.pp_print_string ppf d.Device.name )

let severity_conv =
  Arg.conv
    ( (fun s ->
        match Lint.severity_of_string s with
        | Some sev -> Ok sev
        | None -> Error (`Msg "expected INFO, WARN or ERROR")),
      fun ppf s -> Format.pp_print_string ppf (Lint.severity_name s) )

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A deliberately dirty circuit exercising most rules on the chosen
   device: a duplicated H (QL005), an uncoupled CNOT (QL001), a SWAP
   followed only by measurements (QL006), and a gate after a measurement
   (QL003). *)
let demo_circuit device =
  let n = Device.num_qubits device in
  if n < 4 then invalid_arg "demo needs a device with at least 4 qubits";
  let uncoupled =
    (* find some uncoupled pair; fall back to (0, 1) on complete graphs *)
    let rec search a b =
      if a >= n then (0, 1)
      else if b >= n then search (a + 1) (a + 2)
      else if not (Device.coupled device a b) then (a, b)
      else search a (b + 1)
    in
    search 0 1
  in
  let a, b = uncoupled in
  Circuit.of_gates n
    [
      Gate.H 0;
      Gate.H 0;
      Gate.Cnot (a, b);
      Gate.Cphase (0, 1, 0.7);
      Gate.Swap (2, 3);
      Gate.Measure 0;
      Gate.X 0;
      Gate.Measure 1;
      Gate.Measure 2;
      Gate.Measure 3;
    ]

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let run () file demo device json max_depth min_success_prob lower_bound_factor
    deny dot dag_json =
  try
    let circuit, role, device =
      match (demo, file) with
      | true, _ ->
        let d =
          match device with Some d -> d | None -> Topologies.ibmq_20_tokyo ()
        in
        (demo_circuit d, Lint.Compiled, Some d)
      | false, Some path ->
        let circuit = Qasm.of_string (read_file path) in
        (* with a device the circuit is judged as a compiled artifact on
           physical qubits; without one, as a logical circuit *)
        let role =
          match device with Some _ -> Lint.Compiled | None -> Lint.Logical
        in
        (circuit, role, device)
      | false, None ->
        failwith "expected a .qasm file argument or --demo (see --help)"
    in
    let ctx =
      Lint.context ?device ?max_depth ?min_success_prob ?lower_bound_factor
        ~role circuit
    in
    let findings = Lint.run ctx in
    (* DAG exports ride on the same parsed circuit, so malformed input
       keeps the exit-3 contract before anything is written *)
    (if dot <> None || dag_json <> None then
       let df = Qaoa_analysis.Dataflow.of_circuit circuit in
       Option.iter
         (fun path -> write_file path (Qaoa_analysis.Dataflow.to_dot df))
         dot;
       Option.iter
         (fun path ->
           write_file path
             (Json.to_string (Qaoa_analysis.Dataflow.to_json df) ^ "\n"))
         dag_json);
    if json then print_endline (Json.to_string (Lint.report_to_json findings))
    else print_string (Lint.to_text findings);
    Lint.exit_code ?deny findings
  with
  | Sys_error msg | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-lint: %s\n" msg;
    3

let cmd =
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"OpenQASM 2.0 circuit to lint.")
  in
  let demo =
    Arg.(
      value & flag
      & info [ "demo" ]
          ~doc:
            "Lint a built-in deliberately dirty demo circuit instead of a \
             file (on --device, default tokyo).")
  in
  let device =
    Arg.(
      value
      & opt (some device_conv) None
      & info [ "device" ] ~docv:"NAME"
          ~doc:
            "Judge the circuit as a compiled artifact on this device \
             (tokyo, melbourne, grid6x6, linear<N>, ring<N>); enables the \
             coupling and calibration rules.  Without it the circuit is \
             judged as a logical circuit.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the findings report as JSON on stdout.")
  in
  let max_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Depth budget: warn when the decomposed depth exceeds N.")
  in
  let min_success_prob =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-success-prob" ] ~docv:"P"
          ~doc:
            "Warn when the estimated success probability (gate-error \
             product on the device calibration) falls below P.")
  in
  let lower_bound_factor =
    Arg.(
      value
      & opt (some float) None
      & info [ "lower-bound-factor" ] ~docv:"F"
          ~doc:
            "Warn (QL013) when the decomposed depth exceeds F times the \
             commutation depth lower bound.")
  in
  let deny =
    Arg.(
      value
      & opt (some severity_conv) None
      & info [ "deny" ] ~docv:"SEVERITY"
          ~doc:
            "Fail (exit 1) on findings at or above this severity; ERROR \
             findings always exit 2.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the commutation DAG as Graphviz to FILE, critical-path \
             nodes and edges highlighted.")
  in
  let dag_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "dag-json" ] ~docv:"FILE"
          ~doc:
            "Write the commutation DAG (nodes with ASAP/ALAP levels and \
             slack, edges, summary with the depth lower bound) as JSON to \
             FILE.")
  in
  let term =
    Term.(
      const run $ Qaoa_cli.setup $ file $ demo $ device $ json $ max_depth
      $ min_success_prob $ lower_bound_factor $ deny $ dot $ dag_json)
  in
  Cmd.v
    (Cmd.info "qaoa-lint" ~version:"1.0.0"
       ~doc:"Static lint rules for QAOA circuits (no simulation)")
    term

let () = exit (Cmd.eval' ~term_err:3 cmd)
