(* qaoa-experiments: regenerate a chosen table/figure of the paper's
   evaluation section.

   Examples:
     qaoa-experiments --figure fig9 --scale default
     qaoa-experiments --figure all --scale full *)

module Figures = Qaoa_experiments.Figures
open Cmdliner

let figures =
  [
    ("fig7", fun ~scale -> ignore (Figures.fig7 ~scale ()));
    ("fig8", fun ~scale -> ignore (Figures.fig8 ~scale ()));
    ("fig9", fun ~scale -> ignore (Figures.fig9 ~scale ()));
    ("fig10", fun ~scale -> ignore (Figures.fig10 ~scale ()));
    ("fig11a", fun ~scale -> ignore (Figures.fig11a ~scale ()));
    ("fig11b", fun ~scale -> ignore (Figures.fig11b ~scale ()));
    ("fig12", fun ~scale -> ignore (Figures.fig12 ~scale ()));
    ("ring8", fun ~scale -> ignore (Figures.fig_ring8 ~scale ()));
  ]

let figure_conv =
  let parse s =
    let s = String.lowercase_ascii s in
    if s = "all" then Ok `All
    else
      match List.assoc_opt s figures with
      | Some f -> Ok (`One f)
      | None ->
        Error
          (`Msg
             ("unknown figure; known: all, "
             ^ String.concat ", " (List.map fst figures)))
  in
  let print ppf = function
    | `All -> Format.pp_print_string ppf "all"
    | `One _ -> Format.pp_print_string ppf "<figure>"
  in
  Arg.conv (parse, print)

let scale_conv =
  Arg.conv
    ( (fun s ->
        match Figures.scale_of_string s with
        | Some sc -> Ok sc
        | None -> Error (`Msg "expected smoke | default | full")),
      fun ppf s -> Format.pp_print_string ppf (Figures.scale_name s) )

let run figure scale =
  try
    (match figure with
    | `All -> ignore (Figures.all ~scale ())
    | `One f -> f ~scale);
    0
  with
  | Qaoa_core.Compile.Error e ->
    Printf.eprintf "qaoa-experiments: %s\n"
      (Qaoa_core.Compile.error_to_string e);
    2
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-experiments: %s\n" msg;
    2

let cmd =
  let figure =
    Arg.(
      value
      & opt figure_conv `All
      & info [ "figure"; "f" ] ~docv:"ID"
          ~doc:"Which experiment to run (fig7..fig12, ring8, all).")
  in
  let scale =
    Arg.(
      value
      & opt scale_conv Figures.Default
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Instance-count scale: smoke, default or full (paper-scale).")
  in
  Cmd.v
    (Cmd.info "qaoa-experiments" ~version:"1.0.0"
       ~doc:"Regenerate the MICRO'20 QAOA-compilation evaluation figures")
    Term.(const run $ figure $ scale)

let () = exit (Cmd.eval' ~term_err:2 cmd)
