(* qaoa-experiments: regenerate a chosen table/figure of the paper's
   evaluation section.

   Examples:
     qaoa-experiments --figure fig9 --scale default
     qaoa-experiments --figure all --scale full
     qaoa-experiments --figure all --journal runs/full --export runs/full/csv
     qaoa-experiments --figure all --journal runs/full --resume *)

module Figures = Qaoa_experiments.Figures
module Export = Qaoa_experiments.Export
module Journal = Qaoa_journal.Journal
module Chaos = Qaoa_journal.Chaos
module Signals = Qaoa_journal.Signals
open Cmdliner

let figures :
    (string
    * (scale:Figures.scale -> journal:Journal.t option -> Figures.row list))
    list =
  [
    ("fig7", fun ~scale ~journal -> Figures.fig7 ~scale ?journal ());
    ("fig8", fun ~scale ~journal -> Figures.fig8 ~scale ?journal ());
    ("fig9", fun ~scale ~journal -> Figures.fig9 ~scale ?journal ());
    ("fig10", fun ~scale ~journal -> Figures.fig10 ~scale ?journal ());
    ("fig11a", fun ~scale ~journal -> Figures.fig11a ~scale ?journal ());
    ("fig11b", fun ~scale ~journal -> Figures.fig11b ~scale ?journal ());
    ("fig12", fun ~scale ~journal -> Figures.fig12 ~scale ?journal ());
    ("ring8", fun ~scale ~journal -> Figures.fig_ring8 ~scale ?journal ());
  ]

let figure_conv =
  let parse s =
    let s = String.lowercase_ascii s in
    if s = "all" then Ok `All
    else
      match List.assoc_opt s figures with
      | Some _ -> Ok (`One s)
      | None ->
        Error
          (`Msg
             ("unknown figure; known: all, "
             ^ String.concat ", " (List.map fst figures)))
  in
  let print ppf = function
    | `All -> Format.pp_print_string ppf "all"
    | `One id -> Format.pp_print_string ppf id
  in
  Arg.conv (parse, print)

let scale_conv =
  Arg.conv
    ( (fun s ->
        match Figures.scale_of_string s with
        | Some sc -> Ok sc
        | None -> Error (`Msg "expected smoke | default | full")),
      fun ppf s -> Format.pp_print_string ppf (Figures.scale_name s) )

(* The printed tables carry the real column names; exported CSVs use
   generic value columns sized per figure (same convention as the bench
   harness's bench_results/). *)
let export_csvs ~dir results =
  let triples =
    List.map
      (fun (name, rows) ->
        let width =
          List.fold_left (fun acc (_, vs) -> max acc (List.length vs)) 0 rows
        in
        (name, List.init width (fun i -> Printf.sprintf "v%d" i), rows))
      results
  in
  Export.export_all ~dir triples

let print_journal_stats journal =
  let s = Journal.stats journal in
  Printf.printf
    "journal: %d trial(s) on record at %s (%d cached, %d executed, %d \
     quarantined%s)\n"
    (Journal.entries journal) (Journal.path journal) s.Journal.hits
    s.Journal.appended s.Journal.quarantined
    (if s.Journal.torn_truncated > 0 then
       Printf.sprintf ", %d torn record(s) truncated" s.Journal.torn_truncated
     else "")

let run () figure scale journal_dir resume export_dir =
  try
    if resume && Option.is_none journal_dir then
      failwith "--resume requires --journal DIR";
    Chaos.install_from_env ();
    let journal =
      Option.map (fun dir -> Journal.open_ ~resume ~dir ()) journal_dir
    in
    if Option.is_some journal then
      Signals.install ~resume_hint:(Signals.resume_hint_of_argv ());
    let results =
      match figure with
      | `All -> Figures.all ~scale ?journal ()
      | `One id -> [ (id, (List.assoc id figures) ~scale ~journal) ]
    in
    (match export_dir with
    | None -> ()
    | Some dir ->
      let paths = export_csvs ~dir results in
      Printf.printf "\nwrote %d CSV file(s) under %s/\n" (List.length paths)
        dir);
    Option.iter
      (fun j ->
        print_journal_stats j;
        Journal.close j)
      journal;
    0
  with
  | Qaoa_core.Compile.Error e ->
    Printf.eprintf "qaoa-experiments: %s\n"
      (Qaoa_core.Compile.error_to_string e);
    2
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-experiments: %s\n" msg;
    2

let cmd =
  let figure =
    Arg.(
      value
      & opt figure_conv `All
      & info [ "figure"; "f" ] ~docv:"ID"
          ~doc:"Which experiment to run (fig7..fig12, ring8, all).")
  in
  let scale =
    Arg.(
      value
      & opt scale_conv Figures.Default
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Instance-count scale: smoke, default or full (paper-scale).")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Journal every trial to $(docv)/journal.jsonl so an interrupted \
             run can be resumed.  A non-empty journal is refused unless \
             $(b,--resume) is given.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the journal: completed trials are read back \
             instead of re-executed, quarantined trials stay skipped.")
  in
  let export_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:
            "Write each figure's rows to $(docv)/<figure>.csv (atomic \
             writes; the directory is created if missing).")
  in
  Cmd.v
    (Cmd.info "qaoa-experiments" ~version:"1.0.0"
       ~doc:"Regenerate the MICRO'20 QAOA-compilation evaluation figures")
    Term.(
      const run $ Qaoa_cli.setup $ figure $ scale $ journal_dir $ resume
      $ export_dir)

let () = exit (Cmd.eval' ~term_err:2 cmd)
