(* qaoa-serve: JSONL batch compilation across a pool of domains.

   Examples:
     qaoa-serve --gen-corpus 200 --seed 3 > corpus.jsonl
     qaoa-serve --input corpus.jsonl --workers 4 --sort --output out.jsonl
     cat corpus.jsonl | qaoa-serve --workers 1 --stats
     qaoa-serve --cache-dir state --input corpus.jsonl >/dev/null
     qaoa-serve --cache-dir state --resume-cache --daemon serve.sock

   One request per input line, one response per output line.  Malformed
   lines produce structured {"ok":false,...} responses and never change
   the exit status: 0 = every line answered, 3 = the service itself
   failed (unreadable file, bad flag interplay, ...), 130/143 = drained
   cleanly after SIGINT/SIGTERM (in-flight requests were answered and
   the cache journal flushed before exiting). *)

module Serve = Qaoa_serve.Serve
module Pool = Qaoa_serve.Pool
module Cache = Qaoa_serve.Cache
module Persist = Qaoa_serve.Persist
module Supervise = Qaoa_serve.Supervise
module Daemon = Qaoa_serve.Daemon
module Shard = Qaoa_serve.Shard
module Signals = Qaoa_journal.Signals
module Chaos = Qaoa_journal.Chaos
open Cmdliner

let with_in path f =
  match path with
  | None -> f stdin
  | Some p ->
    let ic = open_in p in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let with_out path f =
  match path with
  | None -> f stdout
  | Some p ->
    let oc = open_out p in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let print_stats oc (stats : Serve.stats) persist =
  Printf.fprintf oc "qaoa-serve: %d requests, %d errors" stats.Serve.requests
    stats.Serve.errors;
  (match stats.Serve.cache_stats with
  | Some c ->
    Printf.fprintf oc
      "; cache %d hits / %d misses / %d rejects / %d evictions (size %d)"
      c.Cache.hits c.Cache.misses c.Cache.rejects c.Cache.evictions
      c.Cache.size;
    if c.Cache.reloaded > 0 then
      Printf.fprintf oc ", %d reloaded" c.Cache.reloaded
  | None -> ());
  (match persist with
  | Some p ->
    let s = Persist.stats p in
    Printf.fprintf oc "; journal %d appended / %d loaded" s.Persist.s_appended
      s.Persist.s_loaded;
    if s.Persist.s_dropped > 0 then
      Printf.fprintf oc ", %d corrupt dropped" s.Persist.s_dropped;
    if s.Persist.s_torn_truncated > 0 then
      Printf.fprintf oc ", torn tail truncated"
  | None -> ());
  output_char oc '\n'

let print_shard_stats oc (st : Shard.stats) =
  Printf.fprintf oc
    "qaoa-serve: %d requests, %d errors; fleet %d spawned / %d restarts / %d \
     rerouted / %d probe failures / %d flapped\n"
    st.Shard.requests st.Shard.errors st.Shard.spawned st.Shard.restarts
    st.Shard.rerouted st.Shard.probe_failures st.Shard.flapped;
  (* one {"op":"stats"} reply per live shard: lets CI assert the
     lookup taxonomy (and warm-restart zero-miss) per child *)
  List.iter
    (fun (i, line) -> Printf.fprintf oc "qaoa-serve: shard %d %s\n" i line)
    st.Shard.shard_stats

(* --shards N: the parent routes and supervises, each child is a full
   qaoa-serve daemon (own worker pool, own cache journal under
   cache_dir/shard-K/).  The parent installs no chaos plan itself - a
   QAOA_CHAOS in the environment is armed in exactly one child
   (QAOA_CHAOS_SHARD, default slot 0) and only in its first
   generation, so a respawned child does not crash forever. *)
let run_sharded ~shards ~workers ~queue ~sort ~timings ~cache ~cache_dir
    ~resume_cache ~daemon ~tries ~backoff ~breaker ~probe_every ~deadline
    ~stats ~input ~output =
  let chaos_slot =
    match Sys.getenv_opt "QAOA_CHAOS_SHARD" with
    | Some s -> ( try int_of_string (String.trim s) with Failure _ -> 0)
    | None -> 0
  in
  let child_workers = max 1 (workers / shards) in
  let child ~slot ~generation ~socket_path ~shutdown_fd =
    let drain = Signals.install_drain () in
    if generation = 0 && slot = chaos_slot then Chaos.install_from_env ();
    let cache_t =
      if cache = 0 then None else Some (Cache.create ~capacity:cache ())
    in
    let persist =
      match (cache_dir, cache_t) with
      | Some dir, Some c ->
        let dir = Filename.concat dir (Printf.sprintf "shard-%d" slot) in
        (* a restarted generation always resumes: its own previous
           life's journal is the warm cache the supervisor promises *)
        Some (Persist.open_ ~resume:(resume_cache || generation > 0) ~dir c)
      | _ -> None
    in
    let config =
      {
        Serve.workers = child_workers;
        queue_capacity = queue;
        sort = false;
        timings;
        cache = cache_t;
        persist;
        supervise =
          {
            Supervise.tries;
            backoff_s = backoff;
            breaker_threshold = breaker;
            breaker_probe_every = probe_every;
            deadline_s = deadline;
          };
        drain = Some drain;
        inflight = Atomic.make 0;
      }
    in
    let _st = Daemon.run ~shutdown_fd config ~socket_path ~drain in
    (match (persist, cache_t) with
    | Some p, Some c -> Persist.finish p c
    | _ -> ());
    Atomic.get drain
  in
  let socket_dir =
    match cache_dir with
    | Some dir -> dir
    | None ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "qaoa-serve-%d" (Unix.getpid ()))
  in
  let drain = Signals.install_drain ~fan_out:Shard.live_pids () in
  let cfg =
    {
      (Shard.default_config ~shards ~socket_dir ~child ()) with
      Shard.sort;
      timings;
      drain = Some drain;
    }
  in
  let st =
    match daemon with
    | Some socket_path ->
      Shard.run_front
        ~on_ready:(fun () ->
          Printf.eprintf "qaoa-serve: %d shards behind %s\n%!" shards
            socket_path)
        cfg ~socket_path ~drain
    | None ->
      with_in input (fun ic ->
          with_out output (fun oc ->
              let line_no = ref 0 in
              let produce () =
                match input_line ic with
                | line ->
                  incr line_no;
                  Some (!line_no, line)
                | exception End_of_file -> None
              in
              let st =
                Shard.run_batch cfg ~produce ~emit:(fun line ->
                    output_string oc line;
                    output_char oc '\n')
              in
              flush oc;
              st))
  in
  if stats then print_shard_stats stderr st;
  Atomic.get drain

let run () gen_corpus gen_device input output workers queue sort timings cache
    cache_dir resume_cache daemon tries backoff breaker probe_every deadline
    stats seed shards =
  try
    match gen_corpus with
    | Some count ->
      if count < 1 then failwith "--gen-corpus expects a positive count";
      with_out output (fun oc ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            (Serve.gen_corpus ~device:gen_device ~seed ~count ());
          flush oc);
      0
    | None ->
      let workers = if workers = 0 then Pool.default_workers () else workers in
      if workers < 1 then
        failwith "--workers expects a positive count (or 0 for auto)";
      if queue < 1 then failwith "--queue expects a positive capacity";
      if cache < 0 then failwith "--cache expects a capacity >= 0";
      if tries < 1 then failwith "--tries expects a positive count";
      if cache_dir = None && resume_cache then
        failwith "--resume-cache needs --cache-dir";
      if cache_dir <> None && cache = 0 then
        failwith "--cache-dir needs a nonzero --cache capacity";
      if shards < 0 then failwith "--shards expects a count >= 0";
      if shards > 0 && sort && daemon <> None then
        failwith "--sort is batch-only (a daemon stream has no end)";
      if shards > 0 then
        run_sharded ~shards ~workers ~queue ~sort ~timings ~cache ~cache_dir
          ~resume_cache ~daemon ~tries ~backoff ~breaker ~probe_every
          ~deadline ~stats ~input ~output
      else begin
      Chaos.install_from_env ();
      let cache_t =
        if cache = 0 then None else Some (Cache.create ~capacity:cache ())
      in
      let persist =
        match (cache_dir, cache_t) with
        | Some dir, Some c -> Some (Persist.open_ ~resume:resume_cache ~dir c)
        | _ -> None
      in
      let drain = Signals.install_drain () in
      let config =
        {
          Serve.workers;
          queue_capacity = queue;
          sort;
          timings;
          cache = cache_t;
          persist;
          supervise =
            {
              Supervise.tries;
              backoff_s = backoff;
              breaker_threshold = breaker;
              breaker_probe_every = probe_every;
              deadline_s = deadline;
            };
          drain = Some drain;
          inflight = Atomic.make 0;
        }
      in
      let st =
        match daemon with
        | Some socket_path ->
          Daemon.run
            ~on_ready:(fun () ->
              Printf.eprintf "qaoa-serve: listening on %s\n%!" socket_path)
            config ~socket_path ~drain
        | None -> with_in input (fun ic -> with_out output (Serve.run config ic))
      in
      (* drained or not, leave the journal compacted and closed *)
      (match (persist, cache_t) with
      | Some p, Some c -> Persist.finish p c
      | _ -> ());
      if stats then print_stats stderr st persist;
      (* conventional 128+signal exit after a graceful drain *)
      Atomic.get drain
      end
  with Sys_error msg | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-serve: %s\n" msg;
    3

let cmd =
  let gen_corpus =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen-corpus" ] ~docv:"N"
          ~doc:
            "Instead of serving, emit a deterministic N-request JSONL corpus \
             (seeded by --seed) and exit.")
  in
  let gen_device =
    Arg.(
      value & opt string "tokyo"
      & info [ "gen-device" ] ~docv:"NAME"
          ~doc:"Device the generated corpus targets (with --gen-corpus).")
  in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "input"; "i" ] ~docv:"FILE"
          ~doc:"Read requests from FILE instead of stdin.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE"
          ~doc:"Write responses to FILE instead of stdout.")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains; 0 (the default) picks the machine's \
             recommended domain count.")
  in
  let queue =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N"
          ~doc:"Bounded number of requests in flight at once.")
  in
  let sort =
    Arg.(
      value & flag
      & info [ "sort" ]
          ~doc:
            "Sort responses by request id instead of emitting them in input \
             order.  Both orders are byte-identical across worker counts.")
  in
  let timings =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:
            "Append per-response cached/ms diagnostics (non-deterministic; \
             leave off when diffing runs).")
  in
  let cache =
    Arg.(
      value & opt int 4096
      & info [ "cache" ] ~docv:"N"
          ~doc:"Compiled-artifact cache capacity in entries; 0 disables it.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the artifact cache: journal every insertion to \
             DIR/cache.jsonl (checksummed, flushed, crash-tolerant).")
  in
  let resume_cache =
    Arg.(
      value & flag
      & info [ "resume-cache" ]
          ~doc:
            "Reload DIR/cache.jsonl into the cache before serving (torn \
             trailing records are truncated, corrupt records dropped); \
             without this flag a previous journal is discarded.")
  in
  let daemon =
    Arg.(
      value
      & opt (some string) None
      & info [ "daemon" ] ~docv:"SOCK"
          ~doc:
            "Serve JSONL over a Unix-domain socket at SOCK instead of \
             stdin/stdout, until SIGINT/SIGTERM drains the daemon.")
  in
  let tries =
    Arg.(
      value & opt int 2
      & info [ "tries" ] ~docv:"N"
          ~doc:
            "Total attempts per request: retryable compile failures are \
             retried with deterministic reseeding.  1 disables retry.")
  in
  let backoff =
    Arg.(
      value & opt float 0.0
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:"Exponential backoff base between attempts (default 0).")
  in
  let breaker =
    Arg.(
      value & opt int 5
      & info [ "breaker" ] ~docv:"N"
          ~doc:
            "Circuit breaker: quarantine a (device, policy) pair after N \
             consecutive compile failures, degrading it to the fallback \
             chain.  0 disables the breaker.")
  in
  let probe_every =
    Arg.(
      value & opt int 8
      & info [ "probe-every" ] ~docv:"N"
          ~doc:"Probe a quarantined pair's primary policy every Nth request.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request compile budget, spanning all attempts.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print request/error/cache/journal totals to stderr when done.")
  in
  let seed =
    Arg.(
      value & opt int 3
      & info [ "seed" ] ~docv:"SEED" ~doc:"Corpus generator seed.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Run N supervised daemon children, each on its own socket with \
             its own cache journal (under $(b,--cache-dir)/shard-K/), and \
             route requests by graph hash; dead children are restarted with \
             backoff, flapping children degraded and rerouted.  0 (the \
             default) serves in-process.  Composes with $(b,--daemon) for a \
             front socket.")
  in
  let term =
    Term.(
      const run $ Qaoa_cli.setup $ gen_corpus $ gen_device $ input $ output
      $ workers $ queue $ sort $ timings $ cache $ cache_dir $ resume_cache
      $ daemon $ tries $ backoff $ breaker $ probe_every $ deadline $ stats
      $ seed $ shards)
  in
  Cmd.v
    (Cmd.info "qaoa-serve" ~version:"1.0.0"
       ~doc:
         "Supervised QAOA compilation service: JSONL requests over a domain \
          pool with a persistent artifact cache, batch or daemon")
    term

let () = exit (Cmd.eval' ~term_err:3 cmd)
