(* qaoa-serve: JSONL batch compilation across a pool of domains.

   Examples:
     qaoa-serve --gen-corpus 200 --seed 3 > corpus.jsonl
     qaoa-serve --input corpus.jsonl --workers 4 --sort --output out.jsonl
     cat corpus.jsonl | qaoa-serve --workers 1 --stats

   One request per input line, one response per output line.  Malformed
   lines produce structured {"ok":false,...} responses and never change
   the exit status: 0 = every line answered, 3 = the service itself
   failed (unreadable file, bad flag interplay, ...). *)

module Serve = Qaoa_serve.Serve
module Pool = Qaoa_serve.Pool
module Cache = Qaoa_serve.Cache
open Cmdliner

let with_in path f =
  match path with
  | None -> f stdin
  | Some p ->
    let ic = open_in p in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let with_out path f =
  match path with
  | None -> f stdout
  | Some p ->
    let oc = open_out p in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let print_stats oc (stats : Serve.stats) =
  Printf.fprintf oc "qaoa-serve: %d requests, %d errors" stats.Serve.requests
    stats.Serve.errors;
  (match stats.Serve.cache_stats with
  | Some c ->
    Printf.fprintf oc "; cache %d hits / %d misses / %d evictions (size %d)"
      c.Cache.hits c.Cache.misses c.Cache.evictions c.Cache.size
  | None -> ());
  output_char oc '\n'

let run () gen_corpus gen_device input output workers queue sort timings cache
    stats seed =
  try
    match gen_corpus with
    | Some count ->
      if count < 1 then failwith "--gen-corpus expects a positive count";
      with_out output (fun oc ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            (Serve.gen_corpus ~device:gen_device ~seed ~count ());
          flush oc);
      0
    | None ->
      let workers = if workers = 0 then Pool.default_workers () else workers in
      if workers < 1 then failwith "--workers expects a positive count (or 0 for auto)";
      if queue < 1 then failwith "--queue expects a positive capacity";
      if cache < 0 then failwith "--cache expects a capacity >= 0";
      let config =
        {
          Serve.workers;
          queue_capacity = queue;
          sort;
          timings;
          cache = (if cache = 0 then None else Some (Cache.create ~capacity:cache));
        }
      in
      let st = with_in input (fun ic -> with_out output (Serve.run config ic)) in
      if stats then print_stats stderr st;
      0
  with Sys_error msg | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-serve: %s\n" msg;
    3

let cmd =
  let gen_corpus =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen-corpus" ] ~docv:"N"
          ~doc:
            "Instead of serving, emit a deterministic N-request JSONL corpus \
             (seeded by --seed) and exit.")
  in
  let gen_device =
    Arg.(
      value & opt string "tokyo"
      & info [ "gen-device" ] ~docv:"NAME"
          ~doc:"Device the generated corpus targets (with --gen-corpus).")
  in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "input"; "i" ] ~docv:"FILE"
          ~doc:"Read requests from FILE instead of stdin.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE"
          ~doc:"Write responses to FILE instead of stdout.")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains; 0 (the default) picks the machine's \
             recommended domain count.")
  in
  let queue =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N"
          ~doc:"Bounded number of requests in flight at once.")
  in
  let sort =
    Arg.(
      value & flag
      & info [ "sort" ]
          ~doc:
            "Sort responses by request id instead of emitting them in input \
             order.  Both orders are byte-identical across worker counts.")
  in
  let timings =
    Arg.(
      value & flag
      & info [ "timings" ]
          ~doc:
            "Append per-response cached/ms diagnostics (non-deterministic; \
             leave off when diffing runs).")
  in
  let cache =
    Arg.(
      value & opt int 4096
      & info [ "cache" ] ~docv:"N"
          ~doc:"Compiled-artifact cache capacity in entries; 0 disables it.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print request/error/cache totals to stderr when done.")
  in
  let seed =
    Arg.(
      value & opt int 3
      & info [ "seed" ] ~docv:"SEED" ~doc:"Corpus generator seed.")
  in
  let term =
    Term.(
      const run $ Qaoa_cli.setup $ gen_corpus $ gen_device $ input $ output
      $ workers $ queue $ sort $ timings $ cache $ stats $ seed)
  in
  Cmd.v
    (Cmd.info "qaoa-serve" ~version:"1.0.0"
       ~doc:
         "Batch QAOA compilation service: JSONL requests over a domain pool \
          with an artifact cache")
    term

let () = exit (Cmd.eval' ~term_err:3 cmd)
