(* qaoa-resilience: recompile the Fig. 10 workload shapes on
   fault-injected devices through the graceful-degradation chain.

   Examples:
     qaoa-resilience --scale smoke
     qaoa-resilience --topology tokyo --topology grid6x6 --verify \
       --deadline 30 --fail-on-exhausted *)

module Figures = Qaoa_experiments.Figures
module Resilience = Qaoa_experiments.Resilience
module Differential = Qaoa_experiments.Differential
module Compile = Qaoa_core.Compile
module Journal = Qaoa_journal.Journal
open Cmdliner

let scale_conv =
  Arg.conv
    ( (fun s ->
        match Figures.scale_of_string s with
        | Some sc -> Ok sc
        | None -> Error (`Msg "expected smoke | default | full")),
      fun ppf s -> Format.pp_print_string ppf (Figures.scale_name s) )

let deadline_conv =
  Arg.conv
    ( (fun s ->
        match float_of_string_opt s with
        | Some d when Float.is_finite d && d > 0.0 -> Ok d
        | _ -> Error (`Msg "expected a positive number of seconds")),
      fun ppf d -> Format.fprintf ppf "%g" d )

let run () scale seed topologies deadline verify retries fail_on_exhausted
    journal_dir resume =
  try
    if resume && Option.is_none journal_dir then
      failwith "--resume requires --journal DIR";
    Qaoa_journal.Chaos.install_from_env ();
    let journal =
      Option.map (fun dir -> Journal.open_ ~resume ~dir ()) journal_dir
    in
    if Option.is_some journal then
      Qaoa_journal.Signals.install
        ~resume_hint:(Qaoa_journal.Signals.resume_hint_of_argv ());
    let compiled = ref 0 and total = ref 0 in
    let recovered = ref 0 and exhausted = ref 0 in
    List.iter
      (fun name ->
        let device = Differential.device_of_topology name in
        let rows =
          Resilience.run ~scale ?journal ~seed ~device ?deadline_s:deadline
            ~verify ~retries ()
        in
        List.iter
          (fun r ->
            compiled := !compiled + r.Resilience.compiled;
            total := !total + r.Resilience.instances;
            recovered := !recovered + r.Resilience.fallback_recovered;
            exhausted := !exhausted + r.Resilience.exhausted)
          rows)
      topologies;
    Printf.printf
      "\nresilience summary: %d/%d compiled, %d recovered by fallback, %d \
       exhausted\n"
      !compiled !total !recovered !exhausted;
    Option.iter
      (fun j ->
        let s = Journal.stats j in
        Printf.printf
          "journal: %d trial(s) on record at %s (%d cached, %d executed, %d \
           quarantined)\n"
          (Journal.entries j) (Journal.path j) s.Journal.hits
          s.Journal.appended s.Journal.quarantined;
        Journal.close j)
      journal;
    if fail_on_exhausted && !exhausted > 0 then begin
      Printf.eprintf
        "qaoa-resilience: %d instance(s) exhausted the fallback chain\n"
        !exhausted;
      1
    end
    else 0
  with
  | Compile.Error e ->
    Printf.eprintf "qaoa-resilience: %s\n" (Compile.error_to_string e);
    2
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-resilience: %s\n" msg;
    2

let cmd =
  let scale =
    Arg.(
      value
      & opt scale_conv Figures.Default
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:"Instance-count scale: smoke, default or full.")
  in
  let seed =
    Arg.(
      value & opt int 13000
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Base seed for workloads, calibration and fault injection.")
  in
  let topologies =
    Arg.(
      value
      & opt_all string [ "tokyo" ]
      & info [ "topology"; "t" ] ~docv:"NAME"
          ~doc:
            "Device topology to sweep (repeatable).  Use a >= 16-qubit \
             register so the n = 15 workloads survive dead qubits.")
  in
  let deadline =
    Arg.(
      value
      & opt (some deadline_conv) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:"Wall-clock budget per fallback chain, in seconds.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Run translation validation on every compiled circuit.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Reseeded retries per strategy on retryable failures.")
  in
  let fail_on_exhausted =
    Arg.(
      value & flag
      & info [ "fail-on-exhausted" ]
          ~doc:
            "Exit 1 if any instance exhausts the whole fallback chain \
             (CI guard).")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:
            "Journal every (device, workload, scenario) cell to \
             $(docv)/journal.jsonl so an interrupted sweep can be resumed.  \
             A non-empty journal is refused unless $(b,--resume) is given.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the journal: completed cells are read back instead \
             of re-executed, quarantined cells stay skipped.")
  in
  Cmd.v
    (Cmd.info "qaoa-resilience" ~version:"1.0.0"
       ~doc:
         "Fault-injection sweep: compile QAOA workloads on degraded devices \
          through the graceful-degradation chain")
    Term.(
      const run $ Qaoa_cli.setup $ scale $ seed $ topologies $ deadline
      $ verify $ retries $ fail_on_exhausted $ journal_dir $ resume)

let () = exit (Cmd.eval' ~term_err:2 cmd)
