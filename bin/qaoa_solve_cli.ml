(* qaoa-solve: end-to-end QAOA solving from the command line - generate
   or encode a problem, optimize parameters, compile, execute, decode.

   Examples:
     qaoa-solve --problem maxcut --nodes 10 --kind regular:3
     qaoa-solve --problem mis --nodes 8 --kind er:0.4 --device melbourne --noisy *)

module Problem = Qaoa_core.Problem
module Encodings = Qaoa_core.Encodings
module Solver = Qaoa_core.Solver
module Compile = Qaoa_core.Compile
module Metrics = Qaoa_circuit.Metrics
module Topologies = Qaoa_hardware.Topologies
module Device = Qaoa_hardware.Device
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng
open Cmdliner

type kind = Er of float | Regular of int

let parse_kind s =
  match String.split_on_char ':' s with
  | [ "er"; p ] -> (
    match float_of_string_opt p with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Er p)
    | _ -> Error (`Msg "er:<p> expects 0 <= p <= 1"))
  | [ "regular"; d ] -> (
    match int_of_string_opt d with
    | Some d when d >= 1 -> Ok (Regular d)
    | _ -> Error (`Msg "regular:<d> expects d >= 1"))
  | _ -> Error (`Msg "expected er:<p> or regular:<d>")

let kind_conv =
  Arg.conv
    ( parse_kind,
      fun ppf -> function
        | Er p -> Format.fprintf ppf "er:%g" p
        | Regular d -> Format.fprintf ppf "regular:%d" d )

let problem_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "maxcut" -> Ok `Maxcut
        | "mis" -> Ok `Mis
        | "vertexcover" | "vc" -> Ok `Vc
        | _ -> Error (`Msg "expected maxcut | mis | vertexcover")),
      fun ppf k ->
        Format.pp_print_string ppf
          (match k with `Maxcut -> "maxcut" | `Mis -> "mis" | `Vc -> "vertexcover") )

let device_conv =
  Arg.conv
    ( (fun s ->
        match Topologies.by_name s with
        | Some d -> Ok d
        | None ->
          Error
            (`Msg
               ("unknown device; known: "
               ^ String.concat ", " Topologies.known_names))),
      fun ppf (d : Device.t) -> Format.pp_print_string ppf d.Device.name )

let strategy_conv =
  Arg.conv
    ( (fun s ->
        match Compile.strategy_of_string s with
        | Some st -> Ok st
        | None -> Error (`Msg "unknown strategy")),
      fun ppf s -> Format.pp_print_string ppf (Compile.strategy_name s) )

(* Malformed input or a structured compile failure is a one-line
   diagnostic and exit 2, never a backtrace. *)
let guard f =
  try f () with
  | Compile.Error e ->
    Printf.eprintf "qaoa-solve: %s\n" (Compile.error_to_string e);
    2
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-solve: %s\n" msg;
    2

let run () problem_kind device strategy nodes kind seed p shots noisy =
  guard @@ fun () ->
  let rng = Rng.create seed in
  let graph =
    match kind with
    | Er prob -> Generators.erdos_renyi rng ~n:nodes ~p:prob
    | Regular d -> Generators.random_regular rng ~n:nodes ~d
  in
  let problem, describe =
    match problem_kind with
    | `Maxcut -> (Problem.of_maxcut graph, "MaxCut")
    | `Mis -> (Encodings.max_independent_set graph, "Max Independent Set")
    | `Vc -> (Encodings.min_vertex_cover graph, "Min Vertex Cover")
  in
  let execution = if noisy then Solver.Noisy else Solver.Ideal in
  let o = Solver.solve ~strategy ~p ~shots ~execution ~seed device problem in
  Printf.printf "problem:    %s on a %d-node graph (%d edges)\n" describe nodes
    (Qaoa_graph.Graph.num_edges graph);
  Printf.printf "device:     %s, strategy %s, p=%d, %s execution\n"
    device.Device.name
    (Compile.strategy_name strategy)
    p
    (if noisy then "noisy" else "ideal");
  Printf.printf "compiled:   depth %d, %d gates, %d swaps\n"
    o.Solver.compiled.Compile.metrics.Metrics.depth
    o.Solver.compiled.Compile.metrics.Metrics.gate_count
    o.Solver.compiled.Compile.swap_count;
  Printf.printf "params:     gamma0=%.4f beta0=%.4f\n"
    o.Solver.params.Qaoa_core.Ansatz.gammas.(0)
    o.Solver.params.Qaoa_core.Ansatz.betas.(0);
  Printf.printf "best cost:  %.3f" o.Solver.best_cost;
  (match o.Solver.optimum with
  | Some opt -> Printf.printf " (optimum %.3f)" opt
  | None -> ());
  Printf.printf "\nmean cost:  %.3f (approximation ratio %.3f)\n"
    o.Solver.mean_cost o.Solver.approximation_ratio;
  (match problem_kind with
  | `Mis | `Vc ->
    let sel = Encodings.decode_selection problem o.Solver.best_bits in
    Printf.printf "selection:  {%s}\n"
      (String.concat ", " (List.map string_of_int sel))
  | `Maxcut -> ());
  0

let cmd =
  let problem =
    Arg.(
      value
      & opt problem_conv `Maxcut
      & info [ "problem" ] ~docv:"NAME" ~doc:"maxcut, mis or vertexcover.")
  in
  let device =
    Arg.(
      value
      & opt device_conv (Topologies.ibmq_16_melbourne ())
      & info [ "device" ] ~docv:"NAME" ~doc:"Target device.")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv (Compile.Ic None)
      & info [ "strategy" ] ~docv:"NAME" ~doc:"Compilation strategy.")
  in
  let nodes = Arg.(value & opt int 8 & info [ "nodes"; "n" ] ~doc:"Graph size.") in
  let kind =
    Arg.(
      value
      & opt kind_conv (Regular 3)
      & info [ "kind" ] ~docv:"KIND" ~doc:"Graph family: er:<p> or regular:<d>.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let p = Arg.(value & opt int 1 & info [ "p" ] ~doc:"QAOA levels.") in
  let shots = Arg.(value & opt int 2048 & info [ "shots" ] ~doc:"Samples.") in
  let noisy =
    Arg.(
      value & flag
      & info [ "noisy" ] ~doc:"Execute with trajectory noise (needs calibration).")
  in
  Cmd.v
    (Cmd.info "qaoa-solve" ~version:"1.0.0"
       ~doc:"Solve a combinatorial problem end-to-end with QAOA")
    Term.(
      const run $ Qaoa_cli.setup $ problem $ device $ strategy $ nodes $ kind
      $ seed $ p $ shots $ noisy)

let () = exit (Cmd.eval' ~term_err:2 cmd)
