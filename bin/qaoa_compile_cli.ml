(* qaoa-compile: compile one QAOA-MaxCut instance for a target device
   with a chosen strategy and report circuit quality (optionally dumping
   OpenQASM).

   Examples:
     qaoa-compile --device tokyo --strategy ic --nodes 16 --kind regular:3
     qaoa-compile --device melbourne --strategy vic --nodes 12 \
                  --kind er:0.5 --seed 7 --qasm *)

module Compile = Qaoa_core.Compile
module Problem = Qaoa_core.Problem
module Ansatz = Qaoa_core.Ansatz
module Metrics = Qaoa_circuit.Metrics
module Topologies = Qaoa_hardware.Topologies
module Device = Qaoa_hardware.Device
module Generators = Qaoa_graph.Generators
module Rng = Qaoa_util.Rng
open Cmdliner

type kind = Er of float | Regular of int

let parse_kind s =
  match String.split_on_char ':' s with
  | [ "er"; p ] -> (
    match float_of_string_opt p with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Er p)
    | _ -> Error (`Msg "er:<p> expects 0 <= p <= 1"))
  | [ "regular"; d ] -> (
    match int_of_string_opt d with
    | Some d when d >= 1 -> Ok (Regular d)
    | _ -> Error (`Msg "regular:<d> expects d >= 1"))
  | _ -> Error (`Msg "expected er:<p> or regular:<d>")

let kind_conv =
  Arg.conv
    ( parse_kind,
      fun ppf -> function
        | Er p -> Format.fprintf ppf "er:%g" p
        | Regular d -> Format.fprintf ppf "regular:%d" d )

let strategy_conv =
  Arg.conv
    ( (fun s ->
        match Compile.strategy_of_string s with
        | Some st -> Ok st
        | None ->
          Error (`Msg "expected naive | greedyv | greedye | qaim | ip | ic | vic")),
      fun ppf s -> Format.pp_print_string ppf (Compile.strategy_name s) )

let device_conv =
  Arg.conv
    ( (fun s ->
        match Topologies.by_name s with
        | Some d -> Ok d
        | None ->
          Error
            (`Msg
               ("unknown device; known: "
               ^ String.concat ", " Topologies.known_names))),
      fun ppf (d : Device.t) -> Format.pp_print_string ppf d.Device.name )

(* Malformed input or a structured compile failure is a one-line
   diagnostic and exit 2, never a backtrace. *)
let guard f =
  try f () with
  | Compile.Error e ->
    Printf.eprintf "qaoa-compile: %s\n" (Compile.error_to_string e);
    2
  | Invalid_argument msg | Failure msg ->
    Printf.eprintf "qaoa-compile: %s\n" msg;
    2

let run () device strategy nodes kind seed p gamma beta packing_limit qasm
    lint analyze =
  guard @@ fun () ->
  let rng = Rng.create seed in
  let graph =
    match kind with
    | Er prob -> Generators.erdos_renyi rng ~n:nodes ~p:prob
    | Regular d -> Generators.random_regular rng ~n:nodes ~d
  in
  let problem = Problem.of_maxcut graph in
  let params =
    {
      Ansatz.gammas = Array.make p gamma;
      betas = Array.make p beta;
    }
  in
  let strategy =
    match (strategy, packing_limit) with
    | Compile.Ic _, Some l -> Compile.Ic (Some l)
    | Compile.Vic _, Some l -> Compile.Vic (Some l)
    | s, _ -> s
  in
  let options = { Compile.default_options with seed; lint; analyze } in
  let result = Compile.compile ~options ~strategy device problem params in
  Printf.printf "device:    %s (%d qubits)\n" device.Device.name
    (Device.num_qubits device);
  Printf.printf "problem:   %d-node MaxCut, %d edges, p=%d\n" nodes
    (Qaoa_graph.Graph.num_edges graph)
    p;
  Printf.printf "strategy:  %s (seed %d)\n" (Compile.strategy_name strategy) seed;
  Printf.printf "depth:     %d\n" result.Compile.metrics.Metrics.depth;
  Printf.printf "gates:     %d (%d CNOT)\n"
    result.Compile.metrics.Metrics.gate_count
    result.Compile.metrics.Metrics.two_qubit_count;
  Printf.printf "swaps:     %d\n" result.Compile.swap_count;
  Printf.printf "time:      %.4f s CPU (%.4f s wall)\n"
    result.Compile.compile_cpu_s result.Compile.compile_wall_s;
  Printf.printf "phases:    %s\n"
    (String.concat " | "
       (List.map
          (fun pt ->
            Printf.sprintf "%s %.2f ms (%.0f%%)" pt.Compile.phase
              (1e3 *. pt.Compile.wall_s)
              (100.0 *. pt.Compile.wall_s
              /. Float.max 1e-12 result.Compile.compile_wall_s))
          result.Compile.phase_times));
  (match result.Compile.static with
  | None -> ()
  | Some s ->
    let module D = Qaoa_analysis.Dataflow in
    (* "lower-bound:" on its own line: the CI gate awks it out and
       asserts it never exceeds the "depth:" line above *)
    Printf.printf "lower-bound: %d (critical path %d, busy bound %d)\n"
      s.D.lower_bound s.D.critical_path s.D.busy_bound;
    Printf.printf "static:    asap-depth %d | total-slack %d | live-pressure \
                   %d/%d\n"
      s.D.asap_depth s.D.total_slack s.D.live_pressure
      (Device.num_qubits device));
  (match device.Device.calibration with
  | Some _ ->
    Printf.printf "success:   %.3e\n" (Compile.success_probability device result)
  | None -> ());
  if qasm then begin
    print_endline "--- OpenQASM 2.0 ---";
    print_string (Qaoa_circuit.Qasm.to_string result.Compile.circuit)
  end;
  if lint then begin
    let module Lint = Qaoa_analysis.Lint in
    print_endline "--- lint ---";
    print_string (Lint.to_text result.Compile.lint_findings);
    (* only ERROR findings fail the compile invocation *)
    if Lint.count Lint.Error result.Compile.lint_findings > 0 then 1 else 0
  end
  else 0

let cmd =
  let device =
    Arg.(
      value
      & opt device_conv (Topologies.ibmq_20_tokyo ())
      & info [ "device" ] ~docv:"NAME"
          ~doc:"Target device (tokyo, melbourne, grid6x6, linear<N>, ring<N>).")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv (Compile.Ic None)
      & info [ "strategy" ] ~docv:"NAME"
          ~doc:"Compilation strategy: naive, greedyv, greedye, qaim, ip, ic, vic.")
  in
  let nodes =
    Arg.(value & opt int 12 & info [ "nodes"; "n" ] ~doc:"Problem graph size.")
  in
  let kind =
    Arg.(
      value
      & opt kind_conv (Regular 3)
      & info [ "kind" ] ~docv:"KIND" ~doc:"Graph family: er:<p> or regular:<d>.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let p = Arg.(value & opt int 1 & info [ "p" ] ~doc:"QAOA levels.") in
  let gamma =
    Arg.(value & opt float 0.7 & info [ "gamma" ] ~doc:"Cost-layer angle.")
  in
  let beta =
    Arg.(value & opt float 0.4 & info [ "beta" ] ~doc:"Mixer-layer angle.")
  in
  let packing_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "packing-limit" ] ~doc:"Max CPHASE gates per IC/VIC layer.")
  in
  let qasm =
    Arg.(value & flag & info [ "qasm" ] ~doc:"Print the compiled OpenQASM 2.0.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the static lint rules on the compiled circuit (recorded \
             as the lint phase); exit 1 if any ERROR finding is reported.")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:
            "Run the commutation-DAG dataflow analysis on the compiled \
             circuit and report the policy-independent depth lower bound, \
             critical path, slack and live-range pressure.")
  in
  let term =
    Term.(
      const run $ Qaoa_cli.setup $ device $ strategy $ nodes $ kind $ seed $ p
      $ gamma $ beta $ packing_limit $ qasm $ lint $ analyze)
  in
  Cmd.v
    (Cmd.info "qaoa-compile" ~version:"1.0.0"
       ~doc:"Compile QAOA-MaxCut circuits with QAIM/IP/IC/VIC (MICRO'20)")
    term

let () = exit (Cmd.eval' ~term_err:2 cmd)
