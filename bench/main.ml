(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation section (printed as tables with the paper's reference
   numbers inlined) and then times the compilation kernels of each
   figure's workload with Bechamel.

   Scale via QAOA_BENCH_SCALE = smoke | default | full. *)

module Figures = Qaoa_experiments.Figures
module Workload = Qaoa_experiments.Workload
module Compile = Qaoa_core.Compile
module Topologies = Qaoa_hardware.Topologies
module Device = Qaoa_hardware.Device
module Rng = Qaoa_util.Rng
module Serve = Qaoa_serve.Serve
module Pool = Qaoa_serve.Pool
module Cache = Qaoa_serve.Cache
module Daemon = Qaoa_serve.Daemon
module Shard = Qaoa_serve.Shard
module Persist = Qaoa_serve.Persist
open Bechamel
open Toolkit

(* One compile kernel per figure/table: the operation each experiment's
   wall-clock is dominated by. *)
let kernels () =
  let params = Workload.default_params in
  let tokyo = Topologies.ibmq_20_tokyo () in
  let tokyo_cal =
    Device.with_random_calibration (Rng.create 5) (Topologies.ibmq_20_tokyo ())
  in
  let melbourne = Topologies.ibmq_16_melbourne () in
  let grid = Topologies.grid_6x6 () in
  let ring8 = Topologies.ring 8 in
  let problem_of device kind n seed =
    let _ = device in
    List.hd (Workload.problems (Rng.create seed) kind ~n ~count:1)
  in
  let compile_test ~name ~device ~strategy problem =
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Compile.compile ~strategy device problem params)))
  in
  let p20 = problem_of tokyo (Workload.Erdos_renyi 0.5) 20 101 in
  let p20r3 = problem_of tokyo (Workload.Regular 3) 20 102 in
  let p15 = problem_of melbourne (Workload.Erdos_renyi 0.5) 14 103 in
  let p36 = problem_of grid (Workload.Regular 15) 36 104 in
  let p8 = problem_of ring8 (Workload.Gnm 8) 8 105 in
  [
    (* Fig. 7/8: initial-mapping strategies *)
    compile_test ~name:"fig7-naive-er05-tokyo" ~device:tokyo
      ~strategy:Compile.Naive p20;
    compile_test ~name:"fig7-qaim-er05-tokyo" ~device:tokyo
      ~strategy:Compile.Qaim p20;
    compile_test ~name:"fig8-qaim-3reg-tokyo" ~device:tokyo
      ~strategy:Compile.Qaim p20r3;
    (* Fig. 9: schedulers *)
    compile_test ~name:"fig9-ip-er05-tokyo" ~device:tokyo ~strategy:Compile.Ip
      p20;
    compile_test ~name:"fig9-ic-er05-tokyo" ~device:tokyo
      ~strategy:(Compile.Ic None) p20;
    (* Fig. 10 / 11: variation-aware compilation *)
    compile_test ~name:"fig10-vic-er05-melbourne" ~device:melbourne
      ~strategy:(Compile.Vic None) p15;
    compile_test ~name:"fig11a-vic-er05-tokyo" ~device:tokyo_cal
      ~strategy:(Compile.Vic None) p20;
    (* Fig. 12: packing limit on the 36-qubit grid *)
    compile_test ~name:"fig12-ic-limit11-grid36" ~device:grid
      ~strategy:(Compile.Ic (Some 11)) p36;
    compile_test ~name:"fig12-ic-unlimited-grid36" ~device:grid
      ~strategy:(Compile.Ic None) p36;
    (* Sec. VI ring-8 comparison *)
    compile_test ~name:"ring8-ic" ~device:ring8 ~strategy:(Compile.Ic None) p8;
    (* commutation-DAG dataflow analysis of a compiled tokyo artifact:
       the O(n^2) DAG build plus every schedule/slack/live-range pass *)
    (let artifact =
       Qaoa_circuit.Decompose.circuit
         (Compile.compile ~strategy:(Compile.Ic None) tokyo p20 params)
           .Compile.circuit
     in
     Test.make ~name:"analysis-dataflow-ic-tokyo"
       (Staged.stage (fun () ->
            ignore (Qaoa_analysis.Dataflow.analyze artifact))));
  ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"compile" (kernels ()))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> Float.nan
        in
        (name, ns, Analyze.OLS.r_square ols) :: acc)
      results []
    |> List.sort compare
  in
  print_endline "\n=== Bechamel: per-compile wall time (monotonic clock) ===";
  let t = Qaoa_util.Table.create [ "kernel"; "time/compile (ms)" ] in
  List.iter
    (fun (name, ns, _) ->
      Qaoa_util.Table.add_float_row t name [ ns /. 1e6 ])
    rows;
  Qaoa_util.Table.print t;
  rows

(* The serving layer, timed as request throughput: one corpus, served at
   1 and 4 worker domains, each cold (fresh artifact cache) and warm
   (cache primed by a prior pass over the same corpus).  Bechamel's
   staged micro-runs fit poorly around a multi-second batch with
   per-repetition cache state, so these four kernels are hand-timed
   (best of 3) and appended to the same rows/JSON as the compile
   kernels, in ns per request. *)
let run_serve_bench ~scale =
  let count =
    match scale with
    | Figures.Smoke -> 24
    | Figures.Default -> 96
    | Figures.Full -> 256
  in
  let corpus = Serve.gen_corpus ~seed:17 ~count () in
  let config ?persist ~workers cache =
    {
      Serve.workers;
      queue_capacity = 64;
      sort = false;
      timings = false;
      cache;
      persist;
      supervise = Qaoa_serve.Supervise.default_config;
      drain = None;
      inflight = Atomic.make 0;
    }
  in
  let time_pass ~workers ~warm =
    let reps = 3 in
    let best = ref infinity in
    for _ = 1 to reps do
      let cache = Some (Cache.create ~capacity:4096 ()) in
      if warm then ignore (Serve.run_lines (config ~workers cache) corpus);
      let t0 = Qaoa_obs.Clock.wall () in
      ignore (Serve.run_lines (config ~workers cache) corpus);
      let dt = Qaoa_obs.Clock.wall () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  (* Restart warmth: serve once journaling the cache to disk, then
     "restart" (fresh cache, --resume-cache) and time the second pass
     including the journal reload - the kill-and-resume path CI
     exercises, as a throughput number. *)
  let time_restart_warm ~workers =
    let module Persist = Qaoa_serve.Persist in
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "qaoa-bench-serve-%d" (Unix.getpid ()))
    in
    let cleanup () =
      (try Sys.remove (Filename.concat dir Persist.default_filename)
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    in
    let reps = 3 in
    let best = ref infinity in
    for _ = 1 to reps do
      let c1 = Cache.create ~capacity:4096 () in
      let p1 = Persist.open_ ~resume:false ~dir c1 in
      ignore (Serve.run_lines (config ~persist:p1 ~workers (Some c1)) corpus);
      Persist.finish p1 c1;
      let t0 = Qaoa_obs.Clock.wall () in
      let c2 = Cache.create ~capacity:4096 () in
      let p2 = Persist.open_ ~resume:true ~dir c2 in
      ignore (Serve.run_lines (config ~persist:p2 ~workers (Some c2)) corpus);
      let dt = Qaoa_obs.Clock.wall () -. t0 in
      Persist.finish p2 c2;
      if dt < !best then best := dt
    done;
    cleanup ();
    !best
  in
  let cases =
    [ (1, false); (1, true); (4, false); (4, true) ]
    |> List.map (fun (workers, warm) ->
           let s = time_pass ~workers ~warm in
           let name =
             Printf.sprintf "serve/tokyo-%dd-%s" workers
               (if warm then "warm" else "cold")
           in
           (name, workers, warm, s))
  in
  let cases =
    cases @ [ ("serve/tokyo-restart-warm", 4, true, time_restart_warm ~workers:4) ]
  in
  Printf.printf
    "\n=== qaoa-serve throughput (%d requests, best of 3, %d cores) ===\n"
    count
    (Domain.recommended_domain_count ());
  let t = Qaoa_util.Table.create [ "kernel"; "req/s"; "ms/req" ] in
  List.iter
    (fun (name, _, _, s) ->
      Qaoa_util.Table.add_float_row t name
        [ float_of_int count /. s; s *. 1e3 /. float_of_int count ])
    cases;
  Qaoa_util.Table.print t;
  let seconds_of w warm =
    List.find_map
      (fun (_, w', warm', s) -> if w' = w && warm' = warm then Some s else None)
      cases
  in
  (match (seconds_of 1 true, seconds_of 4 true) with
  | Some s1, Some s4 ->
    (* informational: a single-core host can't show a parallel speedup *)
    Printf.printf "warm-cache speedup 1d -> 4d: %.2fx\n" (s1 /. s4)
  | _ -> ());
  List.map
    (fun (name, _, _, s) -> (name, s *. 1e9 /. float_of_int count, None))
    cases

(* The sharded fleet, timed end to end: fork 4 daemon children, route
   the corpus by graph hash, drain the fleet - spawn cost included,
   since that is what a parent restart pays.  Cold starts with empty
   per-shard journals; warm primes the journals with one fleet pass,
   then times a fresh fleet resuming them (the kill-and-restart path).

   This kernel forks, and OCaml forbids [Unix.fork] in a process that
   has ever created a domain - so [main] runs it before Bechamel, the
   figure sweeps, or the in-process serve bench spin up any pool.
   (The daemon children spawn their pools after the fork; the parent
   supervisor only talks sockets.) *)
let run_shard_bench ~scale =
  let count =
    match scale with
    | Figures.Smoke -> 24
    | Figures.Default -> 96
    | Figures.Full -> 256
  in
  let corpus = Serve.gen_corpus ~seed:17 ~count () in
  let shards = 4 in
  let base =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "qaoa-bench-shard-%d" (Unix.getpid ()))
  in
  let cleanup () =
    for k = 0 to shards - 1 do
      let dir = Filename.concat base (Printf.sprintf "shard-%d" k) in
      (try Sys.remove (Filename.concat dir Persist.default_filename)
       with Sys_error _ -> ());
      (try Sys.remove (Filename.concat base (Printf.sprintf "shard-%d.sock" k))
       with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    done;
    try Unix.rmdir base with Unix.Unix_error _ -> ()
  in
  let child ~resume ~slot ~generation ~socket_path ~shutdown_fd =
    let drain = Atomic.make 0 in
    let cache = Cache.create ~capacity:4096 () in
    let persist =
      Persist.open_
        ~resume:(resume || generation > 0)
        ~dir:(Filename.concat base (Printf.sprintf "shard-%d" slot))
        cache
    in
    let cfg =
      {
        Serve.workers = 1;
        queue_capacity = 64;
        sort = false;
        timings = false;
        cache = Some cache;
        persist = Some persist;
        supervise = Qaoa_serve.Supervise.default_config;
        drain = Some drain;
        inflight = Atomic.make 0;
      }
    in
    let _stats = Daemon.run ~shutdown_fd cfg ~socket_path ~drain in
    Persist.finish persist cache;
    Atomic.get drain
  in
  let fleet_pass ~resume =
    let cfg =
      Shard.default_config ~shards ~socket_dir:base
        ~child:(child ~resume) ()
    in
    let t0 = Qaoa_obs.Clock.wall () in
    let _out, _stats = Shard.run_lines cfg corpus in
    Qaoa_obs.Clock.wall () -. t0
  in
  let reps = 3 in
  let time_best warm =
    let best = ref infinity in
    for _ = 1 to reps do
      cleanup ();
      let dt =
        if warm then begin
          ignore (fleet_pass ~resume:false);
          fleet_pass ~resume:true
        end
        else fleet_pass ~resume:false
      in
      if dt < !best then best := dt
    done;
    !best
  in
  let cases =
    [
      ("serve/tokyo-4shard-cold", time_best false);
      ("serve/tokyo-4shard-warm", time_best true);
    ]
  in
  cleanup ();
  Printf.printf
    "\n=== qaoa-serve sharded fleet (%d requests, %d shards, best of %d) ===\n"
    count shards reps;
  let t = Qaoa_util.Table.create [ "kernel"; "req/s"; "ms/req" ] in
  List.iter
    (fun (name, s) ->
      Qaoa_util.Table.add_float_row t name
        [ float_of_int count /. s; s *. 1e3 /. float_of_int count ])
    cases;
  Qaoa_util.Table.print t;
  List.map
    (fun (name, s) -> (name, s *. 1e9 /. float_of_int count, None))
    cases

(* Aggregate of the fault-injection sweep: compile survival and fallback
   behaviour across all scenarios and workloads. *)
let resilience_summary rows =
  let module R = Qaoa_experiments.Resilience in
  List.fold_left
    (fun (i, c, f, e) r ->
      ( i + r.R.instances,
        c + r.R.compiled,
        f + r.R.fallback_recovered,
        e + r.R.exhausted ))
    (0, 0, 0, 0) rows

(* Machine-readable kernel timings next to the console table, so future
   changes have a perf trajectory to diff against. *)
let write_bench_json ~dir ~scale ~resilience rows =
  let module Json = Qaoa_obs.Json in
  let kernel_json (name, ns, r2) =
    ( name,
      Json.Assoc
        (("ns_per_run", Json.Float ns)
        :: ("ms_per_run", Json.Float (ns /. 1e6))
        ::
        (match r2 with
        | Some r2 -> [ ("r_square", Json.Float r2) ]
        | None -> [])) )
  in
  let doc =
    Json.Assoc
      [
        ("schema_version", Json.Int 1);
        ("scale", Json.String (Figures.scale_name scale));
        ("clock", Json.String "bechamel monotonic_clock, OLS vs run count");
        ("unit", Json.String "ns/run");
        ("kernels", Json.Assoc (List.map kernel_json rows));
        ( "resilience",
          let instances, compiled, recovered, exhausted = resilience in
          Json.Assoc
            [
              ("instances", Json.Int instances);
              ("compiled", Json.Int compiled);
              ("fallback_recovered", Json.Int recovered);
              ("exhausted", Json.Int exhausted);
            ] );
      ]
  in
  let path = Filename.concat dir "BENCH_results.json" in
  Qaoa_journal.Atomic_write.write_string ~path (Json.to_string doc ^ "\n");
  Printf.printf "wrote %s\n" path

(* Campaign durability: QAOA_BENCH_JOURNAL=DIR journals every trial so a
   crashed or killed bench run resumes (QAOA_BENCH_RESUME=1) from its
   last completed trial instead of starting over. *)
let journal_from_env () =
  match Sys.getenv_opt "QAOA_BENCH_JOURNAL" with
  | None -> None
  | Some dir ->
    let resume =
      match Sys.getenv_opt "QAOA_BENCH_RESUME" with
      | Some ("1" | "true" | "yes") -> true
      | _ -> false
    in
    Some (Qaoa_journal.Journal.open_ ~resume ~dir ())

let () =
  let scale = Figures.scale_from_env () in
  Printf.printf
    "QAOA circuit-compilation benchmark harness (scale=%s; set \
     QAOA_BENCH_SCALE=smoke|default|full)\n"
    (Figures.scale_name scale);
  Qaoa_journal.Chaos.install_from_env ();
  (* Forks a fleet, so it must run before anything below creates a
     domain - fork is forbidden for the rest of the process after. *)
  let shard_rows = run_shard_bench ~scale in
  let journal = journal_from_env () in
  if Option.is_some journal then
    Qaoa_journal.Signals.install
      ~resume_hint:"QAOA_BENCH_RESUME=1 <same bench command>";
  let t0 = Sys.time () in
  let figures = Figures.all ~scale ?journal () in
  Printf.printf "\nfigures regenerated in %.1f CPU s\n" (Sys.time () -. t0);
  let t1 = Sys.time () in
  let ablations = Qaoa_experiments.Ablations.all ~scale ?journal () in
  Printf.printf "\nablations regenerated in %.1f CPU s\n" (Sys.time () -. t1);
  let t2 = Sys.time () in
  let resilience =
    resilience_summary (Qaoa_experiments.Resilience.run ~scale ?journal ())
  in
  (let instances, compiled, recovered, exhausted = resilience in
   Printf.printf
     "\nresilience sweep in %.1f CPU s: %d/%d compiled, %d recovered by \
      fallback, %d exhausted\n"
     (Sys.time () -. t2) compiled instances recovered exhausted);
  Option.iter
    (fun j ->
      let module J = Qaoa_journal.Journal in
      let s = J.stats j in
      Printf.printf
        "journal: %d trial(s) on record at %s (%d cached, %d executed, %d \
         quarantined)\n"
        (J.entries j) (J.path j) s.J.hits s.J.appended s.J.quarantined)
    journal;
  (* plot-ready CSVs alongside the printed tables *)
  let dir = "bench_results" in
  Qaoa_journal.Atomic_write.mkdir_p dir;
  let named prefix rows_list =
    List.map (fun (name, rows) -> (prefix ^ name, [], rows)) rows_list
  in
  (* column headers are embedded in the printed tables; the CSVs carry
     generic value columns sized per figure *)
  let with_columns =
    List.map
      (fun (name, _, rows) ->
        let width =
          List.fold_left (fun acc (_, vs) -> max acc (List.length vs)) 0 rows
        in
        (name, List.init width (fun i -> Printf.sprintf "v%d" i), rows))
      (named "" figures @ named "ablation_" ablations)
  in
  let paths = Qaoa_experiments.Export.export_all ~dir with_columns in
  Printf.printf "\nwrote %d CSV files under %s/\n" (List.length paths) dir;
  let sections =
    List.map
      (fun (id, rows) -> Qaoa_experiments.Report.section_of_rows ~scale id rows)
      (figures @ ablations)
  in
  Qaoa_experiments.Report.write
    ~path:(Filename.concat dir "report.md")
    ~scale sections;
  Printf.printf "wrote %s/report.md\n" dir;
  let rows = run_bechamel () in
  let serve_rows = run_serve_bench ~scale in
  write_bench_json ~dir ~scale ~resilience (rows @ serve_rows @ shard_rows)
